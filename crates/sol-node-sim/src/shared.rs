//! Shared handles to simulated nodes.
//!
//! An agent's `Model` and `Actuator` both need access to the same node (one
//! reads counters, the other changes hardware settings), and the SOL runtime
//! needs to advance the node's simulated time. [`Shared`] wraps a node so all
//! three can hold handles, in both the single-threaded simulation runtime and
//! the threaded runtime.
//!
//! # Locking model
//!
//! A plain mutex pays its full acquire/release cost on every access, yet
//! during a simulation segment a node is owned by exactly one worker thread:
//! the runtime advances the environment and steps every agent from the same
//! thread, so the ~5 lock round-trips per event are pure overhead. `Shared`
//! therefore layers an owner fast path over a spin lock:
//!
//! * [`Shared::scope`] acquires the lock once and returns an [`EnvGuard`]
//!   that keeps it held, tagged with the calling thread. The guard is a plain
//!   value (it holds its own handle to the node), so an environment such as
//!   [`MultiNode`](crate::multi_node::MultiNode) can open scopes on its
//!   substrates in [`Environment::begin_batch`] and store them until
//!   [`Environment::end_batch`].
//! * While a scope is open, [`Shared::with`] and [`Shared::lock`] from the
//!   owning thread skip the lock entirely: one relaxed atomic load plus a
//!   borrow flag that turns aliasing into a panic (the old design deadlocked
//!   on re-entrant access; the panic is strictly more debuggable).
//! * Without a scope — tests, the threaded runtime's two OS threads, fleet
//!   barriers — every access acquires and releases the lock as before.
//!
//! Dropping an [`EnvGuard`] while a borrow from [`lock`](Shared::lock) is
//! still outstanding panics: releasing the lock under a live borrow would
//! hand another thread aliased access.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use sol_core::runtime::placement::{NodePlacement, PlacementError, WorkloadId, WorkloadUnit};
use sol_core::runtime::Environment;
use sol_core::time::Timestamp;
use sol_ml::footprint::MemoryFootprint;

/// A stable, non-zero identifier for the current thread (the address of a
/// thread-local), used to tag lock ownership.
fn thread_key() -> usize {
    thread_local! {
        static KEY: u8 = const { 0 };
    }
    KEY.with(|k| k as *const u8 as usize)
}

/// The lock word + value cell shared by every handle to one node.
struct SharedInner<T> {
    /// 0 when unlocked, otherwise the [`thread_key`] of the holder.
    state: AtomicUsize,
    /// Whether a `&mut T` borrow is currently handed out. Only ever touched
    /// by the thread named in `state`, so relaxed ordering suffices.
    borrowed: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the value is only reachable through the lock/borrow protocol below,
// which hands out at most one `&mut T` at a time, so sharing the inner cell
// across threads requires exactly what a mutex would: `T: Send`.
unsafe impl<T: Send> Send for SharedInner<T> {}
unsafe impl<T: Send> Sync for SharedInner<T> {}

impl<T> SharedInner<T> {
    /// Spins until the lock transitions unlocked → owned by `key`.
    fn acquire(&self, key: usize) {
        let mut spins = 0u32;
        while self
            .state
            .compare_exchange_weak(0, key, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Contention is rare (cross-thread access only happens at
                // barriers or in the threaded runtime); be a good citizen.
                std::thread::yield_now();
            }
        }
    }

    /// Flags the single outstanding `&mut T` borrow.
    ///
    /// # Panics
    ///
    /// Panics if a borrow is already live — the re-entrant access that used
    /// to deadlock on the old mutex.
    fn enter_borrow(&self) {
        // Load + store, not an atomic RMW: only the thread named in `state`
        // reaches this, so there is no race to defend against and the flag
        // costs two plain memory ops on the fast path.
        if self.borrowed.load(Ordering::Relaxed) {
            panic!("Shared: node already borrowed on this thread (re-entrant lock/with)");
        }
        self.borrowed.store(true, Ordering::Relaxed);
    }
}

/// A cloneable, thread-safe handle to a simulated node.
///
/// # Examples
///
/// ```
/// use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
/// use sol_node_sim::shared::Shared;
/// use sol_node_sim::workload::OverclockWorkloadKind;
///
/// let node = CpuNode::new(OverclockWorkloadKind::Synthetic.build(8), CpuNodeConfig::default());
/// let shared = Shared::new(node);
/// let other = shared.clone();
/// shared.lock().set_frequency_ghz(1.9);
/// assert_eq!(other.lock().frequency_ghz(), 1.9);
/// ```
pub struct Shared<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Shared<T> {
    /// Wraps a node in a shared handle.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                state: AtomicUsize::new(0),
                borrowed: AtomicBool::new(false),
                value: UnsafeCell::new(value),
            }),
        }
    }

    /// Locks the node for exclusive access.
    ///
    /// Inside an open [`scope`](Self::scope) on the same thread this is a
    /// borrow-flag check, not a lock acquisition.
    ///
    /// # Panics
    ///
    /// Panics on re-entrant locking from the same thread (two live guards
    /// would alias the node).
    pub fn lock(&self) -> SharedGuard<'_, T> {
        let key = thread_key();
        if self.inner.state.load(Ordering::Relaxed) == key {
            // This thread already holds the lock (an open scope, or a bug —
            // the borrow flag distinguishes them).
            self.inner.enter_borrow();
            SharedGuard { inner: &self.inner, owns_lock: false, _not_send: PhantomData }
        } else {
            self.inner.acquire(key);
            self.inner.borrowed.store(true, Ordering::Relaxed);
            SharedGuard { inner: &self.inner, owns_lock: true, _not_send: PhantomData }
        }
    }

    /// Runs a closure with exclusive access to the node and returns its
    /// result.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.lock())
    }

    /// Acquires the lock for a whole simulation segment and returns a guard
    /// that keeps it held. While the guard lives, every
    /// [`with`](Self::with)/[`lock`](Self::lock) from this thread takes the
    /// borrow-flag fast path. The guard owns its own handle to the node, so
    /// it can be stored (e.g. by a composite environment between
    /// `begin_batch` and `end_batch`).
    ///
    /// # Panics
    ///
    /// Panics if this thread already holds the lock (nested scopes have no
    /// meaningful owner to return to).
    pub fn scope(&self) -> EnvGuard<T> {
        let key = thread_key();
        assert!(
            self.inner.state.load(Ordering::Relaxed) != key,
            "Shared: scope() while this thread already holds the lock"
        );
        self.inner.acquire(key);
        EnvGuard { inner: Arc::clone(&self.inner) }
    }

    /// Number of handles (including this one) referring to the node. Open
    /// [`EnvGuard`]s count: each holds a handle of its own.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl<T: Default> Default for Shared<T> {
    fn default() -> Self {
        Shared::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Reading the value requires the lock; don't block (or panic) inside
        // Debug. Report what can be read without touching the value.
        let state = self.inner.state.load(Ordering::Relaxed);
        f.debug_struct("Shared")
            .field("locked", &(state != 0))
            .field("handles", &Arc::strong_count(&self.inner))
            .finish_non_exhaustive()
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared { inner: Arc::clone(&self.inner) }
    }
}

/// Exclusive access to the node behind a [`Shared`] handle (see
/// [`Shared::lock`]).
pub struct SharedGuard<'a, T> {
    inner: &'a SharedInner<T>,
    /// Whether dropping this guard releases the lock word (false when the
    /// guard rides an enclosing [`EnvGuard`] scope).
    owns_lock: bool,
    /// Keeps the guard on its creating thread, like a mutex guard: the lock
    /// word stores this thread's key.
    _not_send: PhantomData<*mut T>,
}

impl<T> std::ops::Deref for SharedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the borrow flag guarantees this is the only live guard, and
        // the lock word keeps other threads out.
        unsafe { &*self.inner.value.get() }
    }
}

impl<T> std::ops::DerefMut for SharedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.inner.value.get() }
    }
}

impl<T> Drop for SharedGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.borrowed.store(false, Ordering::Relaxed);
        if self.owns_lock {
            self.inner.state.store(0, Ordering::Release);
        }
    }
}

/// Holds a [`Shared`] node's lock open for a whole simulation segment (see
/// [`Shared::scope`]).
///
/// The guard is a plain storable value: it owns a handle to the node and
/// releases the lock when dropped. It deliberately exposes no access to the
/// value — access keeps flowing through [`Shared::with`]/[`Shared::lock`],
/// which detect the open scope and skip the lock acquisition.
pub struct EnvGuard<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Drop for EnvGuard<T> {
    fn drop(&mut self) {
        assert!(
            !self.inner.borrowed.load(Ordering::Relaxed),
            "Shared: scope dropped while a borrow is outstanding"
        );
        self.inner.state.store(0, Ordering::Release);
    }
}

impl<T> std::fmt::Debug for EnvGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvGuard").finish_non_exhaustive()
    }
}

impl<T: Environment> Environment for Shared<T> {
    fn advance_to(&mut self, now: Timestamp) {
        self.with(|n| n.advance_to(now));
    }

    fn mem_bytes(&self) -> usize {
        self.with(|n| n.mem_bytes())
    }

    // The placement hooks must forward too, or a shared placeable node would
    // silently fall back to the "no placeable slots" defaults.
    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        self.with(|n| n.attach_workload(unit))
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        self.with(|n| n.detach_workload(id))
    }

    fn placement(&self) -> NodePlacement {
        self.with(|n| n.placement())
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Shared<T> {
    fn mem_bytes(&self) -> usize {
        // The value sits inline in `SharedInner`; add only the heap bytes it
        // owns on top of the cell itself.
        std::mem::size_of::<Self>()
            + std::mem::size_of::<SharedInner<T>>()
            + self.with(|n| n.mem_bytes()).saturating_sub(std::mem::size_of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};

    #[test]
    fn clones_share_state() {
        let node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        let other = node.clone();
        node.lock().set_primary_cores(3);
        assert_eq!(other.lock().primary_cores(), 3);
        assert_eq!(node.handle_count(), 2);
    }

    #[test]
    fn environment_impl_advances_inner_node() {
        let mut node =
            Shared::new(HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default()));
        node.advance_to(Timestamp::from_secs(2));
        assert_eq!(node.lock().now(), Timestamp::from_secs(2));
    }

    #[test]
    fn with_returns_closure_result() {
        let node =
            Shared::new(HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default()));
        let cores = node.with(|n| n.total_cores());
        assert_eq!(cores, 8);
    }

    #[test]
    fn scope_keeps_access_working_on_the_owning_thread() {
        let node = Shared::new(7u64);
        let guard = node.scope();
        // All of these ride the open scope without re-acquiring the lock.
        node.with(|v| *v += 1);
        *node.lock() += 1;
        assert_eq!(node.with(|v| *v), 9);
        drop(guard);
        assert_eq!(node.with(|v| *v), 9);
    }

    #[test]
    fn scope_excludes_other_threads_until_dropped() {
        let node = Shared::new(0u64);
        let guard = node.scope();
        node.with(|v| *v = 5);
        let other = node.clone();
        let t = std::thread::spawn(move || {
            // Blocks until the scope is released, then sees its writes.
            other.with(|v| {
                assert_eq!(*v, 5);
                *v = 6;
            });
        });
        // Give the spawned thread a moment to hit the lock, then release.
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(guard);
        t.join().unwrap();
        assert_eq!(node.with(|v| *v), 6);
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn reentrant_access_inside_a_scope_panics_instead_of_deadlocking() {
        let node = Shared::new(0u64);
        let _guard = node.scope();
        let inner = node.clone();
        node.with(|_| {
            inner.with(|_| {});
        });
    }

    #[test]
    #[should_panic(expected = "already holds the lock")]
    fn nested_scopes_on_one_thread_panic() {
        let node = Shared::new(0u64);
        let _a = node.scope();
        let _b = node.scope();
    }

    #[test]
    fn cross_thread_mutation_without_scope_still_locks() {
        let node = Shared::new(0u64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = node.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        n.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(node.with(|v| *v), 4000);
    }
}
