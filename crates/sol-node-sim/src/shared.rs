//! Shared handles to simulated nodes.
//!
//! An agent's `Model` and `Actuator` both need access to the same node (one
//! reads counters, the other changes hardware settings), and the SOL runtime
//! needs to advance the node's simulated time. [`Shared`] wraps a node in an
//! `Arc<Mutex<_>>` so all three can hold handles, in both the single-threaded
//! simulation runtime and the threaded runtime.

use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use sol_core::runtime::placement::{NodePlacement, PlacementError, WorkloadId, WorkloadUnit};
use sol_core::runtime::Environment;
use sol_core::time::Timestamp;

/// A cloneable, thread-safe handle to a simulated node.
///
/// # Examples
///
/// ```
/// use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
/// use sol_node_sim::shared::Shared;
/// use sol_node_sim::workload::OverclockWorkloadKind;
///
/// let node = CpuNode::new(OverclockWorkloadKind::Synthetic.build(8), CpuNodeConfig::default());
/// let shared = Shared::new(node);
/// let other = shared.clone();
/// shared.lock().set_frequency_ghz(1.9);
/// assert_eq!(other.lock().frequency_ghz(), 1.9);
/// ```
#[derive(Debug, Default)]
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Shared<T> {
    /// Wraps a node in a shared handle.
    pub fn new(value: T) -> Self {
        Shared { inner: Arc::new(Mutex::new(value)) }
    }

    /// Locks the node for exclusive access.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Runs a closure with exclusive access to the node and returns its
    /// result.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Number of handles (including this one) referring to the node.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Environment> Environment for Shared<T> {
    fn advance_to(&mut self, now: Timestamp) {
        self.inner.lock().advance_to(now);
    }

    // The placement hooks must forward too, or a shared placeable node would
    // silently fall back to the "no placeable slots" defaults.
    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        self.inner.lock().attach_workload(unit)
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        self.inner.lock().detach_workload(id)
    }

    fn placement(&self) -> NodePlacement {
        self.inner.lock().placement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};

    #[test]
    fn clones_share_state() {
        let node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        let other = node.clone();
        node.lock().set_primary_cores(3);
        assert_eq!(other.lock().primary_cores(), 3);
        assert_eq!(node.handle_count(), 2);
    }

    #[test]
    fn environment_impl_advances_inner_node() {
        let mut node =
            Shared::new(HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default()));
        node.advance_to(Timestamp::from_secs(2));
        assert_eq!(node.lock().now(), Timestamp::from_secs(2));
    }

    #[test]
    fn with_returns_closure_result() {
        let node =
            Shared::new(HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default()));
        let cores = node.with(|n| n.total_cores());
        assert_eq!(cores, 8);
    }
}
