//! One physical node composing any set of substrates for co-located agents.
//!
//! The paper's headline scenario (§4.2, §6) is multiple learning agents
//! sharing one server. [`MultiNode`] composes an arbitrary set of registered
//! substrates — the CPU/DVFS node (SmartOverclock), the harvesting node
//! (SmartHarvest), the two-tier memory node (SmartMemory), plus any extra
//! [`Environment`] — into one environment that advances everything in
//! lockstep under the runtime's virtual clock. A
//! [`NodeRuntime`](sol_core::runtime::node::NodeRuntime) assembled through
//! [`ScenarioBuilder`](sol_core::runtime::builder::ScenarioBuilder) can then
//! drive any agent population against it.
//!
//! Substrates are physically coupled through declared [`Coupling`]s, applied
//! before each advance:
//!
//! * [`Coupling::FrequencyToDemand`] — the overclocking agent sets the node's
//!   core frequency, and faster cores complete the harvest-side primary VM's
//!   work in fewer core-seconds, shrinking its core demand (and enlarging the
//!   harvestable pool).
//! * [`Coupling::FrequencyToMemoryBandwidth`] — faster cores issue more
//!   memory accesses per second, scaling the memory substrate's access rate.
//!
//! Omit a coupling to simulate separate physical domains (e.g. per-VM
//! frequency domains).
//!
//! # Examples
//!
//! All three paper substrates on one node, fully coupled:
//!
//! ```
//! use sol_core::runtime::Environment;
//! use sol_core::time::Timestamp;
//! use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
//! use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
//! use sol_node_sim::memory_node::{MemoryNode, MemoryNodeConfig, MemoryWorkloadKind};
//! use sol_node_sim::multi_node::{Coupling, MultiNode};
//! use sol_node_sim::shared::Shared;
//! use sol_node_sim::workload::OverclockWorkloadKind;
//!
//! let cpu = Shared::new(CpuNode::new(
//!     OverclockWorkloadKind::ObjectStore.build(8),
//!     CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
//! ));
//! let harvest =
//!     Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
//! let memory = Shared::new(MemoryNode::new(
//!     MemoryWorkloadKind::ObjectStore,
//!     MemoryNodeConfig::default(),
//! ));
//!
//! let mut node = MultiNode::builder()
//!     .cpu(cpu.clone())
//!     .harvest(harvest.clone())
//!     .memory(memory.clone())
//!     .coupling(Coupling::FrequencyToDemand)
//!     .coupling(Coupling::FrequencyToMemoryBandwidth)
//!     .build()?;
//!
//! node.advance_to(Timestamp::from_secs(5));
//! assert_eq!(cpu.lock().now(), Timestamp::from_secs(5));
//! assert_eq!(harvest.lock().now(), Timestamp::from_secs(5));
//! assert_eq!(memory.lock().now(), Timestamp::from_secs(5));
//! # Ok::<(), sol_core::error::RuntimeError>(())
//! ```

use sol_core::error::RuntimeError;
use sol_core::runtime::placement::{NodePlacement, PlacementError, WorkloadId, WorkloadUnit};
use sol_core::runtime::Environment;
use sol_core::time::Timestamp;

use crate::cpu_node::CpuNode;
use crate::harvest_node::HarvestNode;
use crate::memory_node::MemoryNode;
use crate::shared::{EnvGuard, Shared};

/// A declared physical interaction between two substrates of a [`MultiNode`],
/// applied before every environment advance.
///
/// The declaration order of couplings never matters: [`MultiNodeBuilder::build`]
/// canonicalizes them into this enum's variant order, so two nodes declaring
/// the same coupling *set* behave identically (and future couplings that
/// write overlapping state stay deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Coupling {
    /// Core frequency → harvest-side primary VM demand: overclocked cores
    /// finish the primary's work in fewer core-seconds. Requires the CPU and
    /// harvest substrates.
    FrequencyToDemand,
    /// Core frequency → memory access rate: overclocked cores issue more
    /// memory accesses per second. Requires the CPU and memory substrates.
    FrequencyToMemoryBandwidth,
    /// Memory pressure → primary VM service time: the larger the fraction of
    /// recent accesses served from the slow remote tier, the longer the
    /// harvest-side primary VM's work stalls per request (its service time
    /// scales by `1 + GAIN · remote_fraction`, see
    /// [`MEMORY_PRESSURE_LATENCY_GAIN`]). Requires the memory and harvest
    /// substrates.
    MemoryPressureToLatency,
}

/// Gain of [`Coupling::MemoryPressureToLatency`]: remote accesses are a few
/// times slower than local ones, so fully remote traffic (remote fraction 1)
/// triples the primary VM's service time.
pub const MEMORY_PRESSURE_LATENCY_GAIN: f64 = 2.0;

impl Coupling {
    fn name(self) -> &'static str {
        match self {
            Coupling::FrequencyToDemand => "frequency→demand",
            Coupling::FrequencyToMemoryBandwidth => "frequency→memory-bandwidth",
            Coupling::MemoryPressureToLatency => "memory-pressure→latency",
        }
    }
}

/// Assembles a [`MultiNode`] from substrates and couplings. Created with
/// [`MultiNode::builder`].
#[derive(Default)]
pub struct MultiNodeBuilder {
    cpu: Option<Shared<CpuNode>>,
    harvest: Option<Shared<HarvestNode>>,
    memory: Option<Shared<MemoryNode>>,
    extras: Vec<Box<dyn Environment + Send>>,
    couplings: Vec<Coupling>,
}

impl MultiNodeBuilder {
    /// Registers the CPU/DVFS substrate (the SmartOverclock surface).
    pub fn cpu(mut self, node: Shared<CpuNode>) -> Self {
        self.cpu = Some(node);
        self
    }

    /// Registers the core-harvesting substrate (the SmartHarvest surface).
    pub fn harvest(mut self, node: Shared<HarvestNode>) -> Self {
        self.harvest = Some(node);
        self
    }

    /// Registers the two-tier memory substrate (the SmartMemory surface).
    pub fn memory(mut self, node: Shared<MemoryNode>) -> Self {
        self.memory = Some(node);
        self
    }

    /// Registers an additional substrate advanced in lockstep after the typed
    /// ones ([`Shared`] handles work directly). Extras take part in the
    /// shared clock but in no declared coupling.
    pub fn substrate(mut self, env: impl Environment + Send + 'static) -> Self {
        self.extras.push(Box::new(env));
        self
    }

    /// Declares a physical coupling between registered substrates.
    /// Duplicates are ignored.
    pub fn coupling(mut self, coupling: Coupling) -> Self {
        if !self.couplings.contains(&coupling) {
            self.couplings.push(coupling);
        }
        self
    }

    /// Validates that every declared coupling has its substrates and returns
    /// the composed node, with the couplings canonicalized into [`Coupling`]
    /// variant order so that declaration order can never change results.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if a coupling references a
    /// substrate that was not registered.
    pub fn build(mut self) -> Result<MultiNode, RuntimeError> {
        self.couplings.sort_unstable();
        for &coupling in &self.couplings {
            let satisfied = match coupling {
                Coupling::FrequencyToDemand => self.cpu.is_some() && self.harvest.is_some(),
                Coupling::FrequencyToMemoryBandwidth => self.cpu.is_some() && self.memory.is_some(),
                Coupling::MemoryPressureToLatency => {
                    self.memory.is_some() && self.harvest.is_some()
                }
            };
            if !satisfied {
                return Err(RuntimeError::InvalidConfig(format!(
                    "coupling {} requires substrates that are not registered",
                    coupling.name()
                )));
            }
        }
        Ok(MultiNode {
            cpu: self.cpu,
            harvest: self.harvest,
            memory: self.memory,
            extras: self.extras,
            couplings: self.couplings,
            scopes: None,
        })
    }
}

/// The substrate locks held open for one simulation segment (between
/// [`Environment::begin_batch`] and [`Environment::end_batch`]): every
/// `with` call from the driving thread — couplings, advances, agent
/// model/actuator reads — rides these guards instead of re-locking.
struct BatchScopes {
    _cpu: Option<EnvGuard<CpuNode>>,
    _harvest: Option<EnvGuard<HarvestNode>>,
    _memory: Option<EnvGuard<MemoryNode>>,
}

/// One server hosting any set of co-located substrates, advanced in lockstep
/// with declared couplings. See the [module docs](self).
pub struct MultiNode {
    cpu: Option<Shared<CpuNode>>,
    harvest: Option<Shared<HarvestNode>>,
    memory: Option<Shared<MemoryNode>>,
    extras: Vec<Box<dyn Environment + Send>>,
    couplings: Vec<Coupling>,
    /// Open substrate scopes while inside a `begin_batch`/`end_batch` pair.
    scopes: Option<BatchScopes>,
}

impl std::fmt::Debug for MultiNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiNode")
            .field("cpu", &self.cpu.is_some())
            .field("harvest", &self.harvest.is_some())
            .field("memory", &self.memory.is_some())
            .field("extras", &self.extras.len())
            .field("couplings", &self.couplings)
            .finish()
    }
}

impl MultiNode {
    /// Starts assembling a node.
    pub fn builder() -> MultiNodeBuilder {
        MultiNodeBuilder::default()
    }

    /// Handle to the CPU/DVFS substrate, if registered.
    pub fn cpu(&self) -> Option<&Shared<CpuNode>> {
        self.cpu.as_ref()
    }

    /// Handle to the harvesting substrate, if registered.
    pub fn harvest(&self) -> Option<&Shared<HarvestNode>> {
        self.harvest.as_ref()
    }

    /// Handle to the memory substrate, if registered.
    pub fn memory(&self) -> Option<&Shared<MemoryNode>> {
        self.memory.as_ref()
    }

    /// The declared couplings, in canonical (variant) order.
    pub fn couplings(&self) -> &[Coupling] {
        &self.couplings
    }

    /// Applies every declared coupling once (reading the current source
    /// state), without advancing time.
    fn apply_couplings(&mut self) {
        if self.couplings.is_empty() {
            return;
        }
        let freq_factor = self
            .cpu
            .as_ref()
            .map(|cpu| cpu.with(|n| n.frequency_ghz() / n.nominal_frequency_ghz()));
        for &coupling in &self.couplings {
            match coupling {
                Coupling::FrequencyToDemand => {
                    if let (Some(factor), Some(harvest)) = (freq_factor, &self.harvest) {
                        harvest.with(|h| h.set_core_speed_factor(factor));
                    }
                }
                Coupling::FrequencyToMemoryBandwidth => {
                    if let (Some(factor), Some(memory)) = (freq_factor, &self.memory) {
                        memory.with(|m| m.set_bandwidth_factor(factor));
                    }
                }
                Coupling::MemoryPressureToLatency => {
                    if let (Some(memory), Some(harvest)) = (&self.memory, &self.harvest) {
                        let remote = memory.with(|m| m.recent_remote_fraction());
                        harvest.with(|h| {
                            h.set_service_time_factor(1.0 + MEMORY_PRESSURE_LATENCY_GAIN * remote)
                        });
                    }
                }
            }
        }
    }
}

impl Environment for MultiNode {
    fn begin_batch(&mut self) {
        if self.scopes.is_some() {
            return;
        }
        self.scopes = Some(BatchScopes {
            _cpu: self.cpu.as_ref().map(Shared::scope),
            _harvest: self.harvest.as_ref().map(Shared::scope),
            _memory: self.memory.as_ref().map(Shared::scope),
        });
        for extra in &mut self.extras {
            extra.begin_batch();
        }
    }

    fn end_batch(&mut self) {
        for extra in &mut self.extras {
            extra.end_batch();
        }
        self.scopes = None;
    }

    fn advance_to(&mut self, now: Timestamp) {
        self.apply_couplings();
        if let Some(cpu) = &self.cpu {
            cpu.with(|n| n.advance_to(now));
        }
        if let Some(harvest) = &self.harvest {
            harvest.with(|h| h.advance_to(now));
        }
        if let Some(memory) = &self.memory {
            memory.with(|m| m.advance_to(now));
        }
        for extra in &mut self.extras {
            extra.advance_to(now);
        }
    }

    // Dynamic workload placement lands on the CPU substrate: placed VMs are
    // compute consumers, contending with the primary workload for cores.
    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        match &self.cpu {
            Some(cpu) => cpu.with(|n| n.attach_workload(unit)),
            None => Err(PlacementError::Unsupported),
        }
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        match &self.cpu {
            Some(cpu) => cpu.with(|n| n.detach_workload(id)),
            None => Err(PlacementError::Unsupported),
        }
    }

    fn placement(&self) -> NodePlacement {
        match &self.cpu {
            Some(cpu) => cpu.with(|n| n.placement()),
            None => NodePlacement::none(),
        }
    }

    fn mem_bytes(&self) -> usize {
        use sol_ml::footprint::MemoryFootprint;
        let mut total = std::mem::size_of::<Self>();
        if let Some(cpu) = &self.cpu {
            total += MemoryFootprint::mem_bytes(cpu);
        }
        if let Some(harvest) = &self.harvest {
            total += MemoryFootprint::mem_bytes(harvest);
        }
        if let Some(memory) = &self.memory {
            total += MemoryFootprint::mem_bytes(memory);
        }
        for extra in &self.extras {
            total += Environment::mem_bytes(&**extra);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_node::CpuNodeConfig;
    use crate::harvest_node::{BurstyService, HarvestNodeConfig};
    use crate::memory_node::{MemoryNodeConfig, MemoryWorkloadKind};
    use crate::workload::OverclockWorkloadKind;

    fn cpu() -> Shared<CpuNode> {
        Shared::new(CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ))
    }

    fn harvest() -> Shared<HarvestNode> {
        Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()))
    }

    fn memory() -> Shared<MemoryNode> {
        Shared::new(MemoryNode::new(
            MemoryWorkloadKind::ObjectStore,
            MemoryNodeConfig { batches: 64, ..MemoryNodeConfig::default() },
        ))
    }

    #[test]
    fn advances_all_substrates_in_lockstep() {
        let (c, h, m) = (cpu(), harvest(), memory());
        let mut node = MultiNode::builder()
            .cpu(c.clone())
            .harvest(h.clone())
            .memory(m.clone())
            .build()
            .unwrap();
        node.advance_to(Timestamp::from_secs(3));
        assert_eq!(c.lock().now(), Timestamp::from_secs(3));
        assert_eq!(h.lock().now(), Timestamp::from_secs(3));
        assert_eq!(m.lock().now(), Timestamp::from_secs(3));
    }

    #[test]
    fn frequency_coupling_propagates_to_primary_demand() {
        let (c, h) = (cpu(), harvest());
        let mut node = MultiNode::builder()
            .cpu(c.clone())
            .harvest(h.clone())
            .coupling(Coupling::FrequencyToDemand)
            .build()
            .unwrap();
        node.advance_to(Timestamp::from_secs(1));
        assert_eq!(h.lock().core_speed_factor(), 1.0);
        c.lock().set_frequency_ghz(2.3);
        node.advance_to(Timestamp::from_secs(2));
        let factor = h.lock().core_speed_factor();
        assert!((factor - 2.3 / 1.5).abs() < 1e-9, "factor {factor}");
    }

    #[test]
    fn frequency_coupling_propagates_to_memory_bandwidth() {
        let (c, m) = (cpu(), memory());
        let mut node = MultiNode::builder()
            .cpu(c.clone())
            .memory(m.clone())
            .coupling(Coupling::FrequencyToMemoryBandwidth)
            .build()
            .unwrap();
        node.advance_to(Timestamp::from_secs(1));
        assert_eq!(m.lock().bandwidth_factor(), 1.0);
        let before = m.with(|n| n.local_accesses() + n.remote_accesses());
        c.lock().set_frequency_ghz(2.3);
        node.advance_to(Timestamp::from_secs(2));
        assert!((m.lock().bandwidth_factor() - 2.3 / 1.5).abs() < 1e-9);
        // The faster clock produced proportionally more accesses in the
        // second second than the first.
        let after = m.with(|n| n.local_accesses() + n.remote_accesses());
        assert!(after - before > before * 1.2);
    }

    #[test]
    fn undeclared_couplings_leave_substrates_independent() {
        let (c, h, m) = (cpu(), harvest(), memory());
        let mut node = MultiNode::builder()
            .cpu(c.clone())
            .harvest(h.clone())
            .memory(m.clone())
            .build()
            .unwrap();
        c.lock().set_frequency_ghz(2.3);
        node.advance_to(Timestamp::from_secs(1));
        assert_eq!(h.lock().core_speed_factor(), 1.0);
        assert_eq!(m.lock().bandwidth_factor(), 1.0);
    }

    #[test]
    fn couplings_without_substrates_are_rejected() {
        let err =
            MultiNode::builder().harvest(harvest()).coupling(Coupling::FrequencyToDemand).build();
        assert!(matches!(err, Err(RuntimeError::InvalidConfig(_))));
        let err =
            MultiNode::builder().cpu(cpu()).coupling(Coupling::FrequencyToMemoryBandwidth).build();
        assert!(matches!(err, Err(RuntimeError::InvalidConfig(_))));
        // MemoryPressureToLatency needs both the memory and the harvest
        // substrates — a CPU alone (or either half alone) is rejected.
        for builder in [
            MultiNode::builder().cpu(cpu()),
            MultiNode::builder().memory(memory()),
            MultiNode::builder().harvest(harvest()),
        ] {
            let err = builder.coupling(Coupling::MemoryPressureToLatency).build();
            assert!(matches!(err, Err(RuntimeError::InvalidConfig(_))));
        }
    }

    #[test]
    fn memory_pressure_coupling_inflates_primary_service_time() {
        let run = |coupled: bool| {
            let (h, m) = (harvest(), memory());
            let mut builder = MultiNode::builder().harvest(h.clone()).memory(m.clone());
            if coupled {
                builder = builder.coupling(Coupling::MemoryPressureToLatency);
            }
            let mut node = builder.build().unwrap();
            // Warm up, then push the entire hot set to the remote tier so the
            // remote-access ratio climbs.
            node.advance_to(Timestamp::from_secs(5));
            let hot: Vec<usize> = m.with(|n| n.hottest_batches());
            m.with(|n| {
                for &b in hot.iter().take(32) {
                    n.migrate_to_remote(b);
                }
            });
            // Advance in steps, as a runtime would: couplings are re-applied
            // before every advance, tracking the rising remote fraction.
            for secs in 6..=30 {
                node.advance_to(Timestamp::from_secs(secs));
            }
            (h.with(|n| n.service_time_factor()), h.with(|n| n.mean_latency_ms()))
        };
        let (coupled_factor, coupled_latency) = run(true);
        let (uncoupled_factor, uncoupled_latency) = run(false);
        assert_eq!(uncoupled_factor, 1.0);
        assert!(
            coupled_factor > 1.3,
            "remote pressure must inflate service time: {coupled_factor}"
        );
        assert!(coupled_latency > uncoupled_latency);
    }

    #[test]
    fn placement_delegates_to_the_cpu_substrate() {
        use sol_core::runtime::placement::{PlacementError, WorkloadId, WorkloadUnit};
        let placeable = Shared::new(CpuNode::new(
            OverclockWorkloadKind::DiskSpeed.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() }.with_placeable_cores(4.0),
        ));
        let mut node =
            MultiNode::builder().cpu(placeable.clone()).harvest(harvest()).build().unwrap();
        let unit = WorkloadUnit::new(WorkloadId(11), 2.0);
        node.attach_workload(unit).unwrap();
        assert_eq!(node.placement().resident, vec![unit]);
        assert!(placeable.with(|n| n.placement().hosts(unit.id)));
        assert_eq!(node.detach_workload(unit.id), Ok(unit));
        // Without a CPU substrate there is nowhere to place.
        let mut cpuless = MultiNode::builder().harvest(harvest()).build().unwrap();
        assert_eq!(cpuless.attach_workload(unit), Err(PlacementError::Unsupported));
        assert_eq!(cpuless.placement().capacity, 0.0);
    }

    #[test]
    fn coupling_declaration_order_is_canonicalized_and_irrelevant() {
        // Assemble the same fully-coupled node with the two possible
        // declaration orders and drive both through an identical frequency
        // trajectory: the applied state must match exactly, and both nodes
        // must expose the same canonical coupling list.
        let run = |reversed: bool| {
            let (c, h, m) = (cpu(), harvest(), memory());
            let builder = MultiNode::builder().cpu(c.clone()).harvest(h.clone()).memory(m.clone());
            let builder = if reversed {
                builder
                    .coupling(Coupling::FrequencyToMemoryBandwidth)
                    .coupling(Coupling::FrequencyToDemand)
            } else {
                builder
                    .coupling(Coupling::FrequencyToDemand)
                    .coupling(Coupling::FrequencyToMemoryBandwidth)
            };
            let mut node = builder.build().unwrap();
            let couplings = node.couplings().to_vec();
            c.lock().set_frequency_ghz(2.3);
            node.advance_to(Timestamp::from_secs(2));
            c.lock().set_frequency_ghz(1.9);
            node.advance_to(Timestamp::from_secs(4));
            (
                couplings,
                h.with(|n| n.core_speed_factor()),
                m.with(|n| n.bandwidth_factor()),
                m.with(|n| n.local_accesses() + n.remote_accesses()),
                h.with(|n| n.harvested_core_seconds()),
            )
        };
        let declared = run(false);
        let reversed = run(true);
        assert_eq!(declared, reversed);
        assert_eq!(
            declared.0,
            vec![Coupling::FrequencyToDemand, Coupling::FrequencyToMemoryBandwidth],
            "build() must canonicalize the coupling order"
        );
    }

    #[test]
    fn batch_scopes_allow_same_thread_access_and_release_on_end() {
        let (c, h) = (cpu(), harvest());
        let mut node = MultiNode::builder()
            .cpu(c.clone())
            .harvest(h.clone())
            .coupling(Coupling::FrequencyToDemand)
            .build()
            .unwrap();
        node.begin_batch();
        node.begin_batch(); // idempotent: a second begin changes nothing
        node.advance_to(Timestamp::from_secs(1));
        // Agent-style access from the driving thread rides the open scope.
        c.lock().set_frequency_ghz(2.3);
        node.advance_to(Timestamp::from_secs(2));
        assert!((h.with(|n| n.core_speed_factor()) - 2.3 / 1.5).abs() < 1e-9);
        node.end_batch();
        // After end_batch other threads can lock the substrates again.
        let c2 = c.clone();
        std::thread::spawn(move || c2.lock().frequency_ghz()).join().unwrap();
    }

    #[test]
    fn extra_substrates_share_the_clock() {
        #[derive(Debug, Default)]
        struct Probe(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl Environment for Probe {
            fn advance_to(&mut self, now: Timestamp) {
                self.0.store(now.as_nanos(), std::sync::atomic::Ordering::SeqCst);
            }
        }
        let probe = Probe::default();
        let seen = probe.0.clone();
        let mut node = MultiNode::builder().substrate(probe).build().unwrap();
        node.advance_to(Timestamp::from_secs(4));
        assert_eq!(
            seen.load(std::sync::atomic::Ordering::SeqCst),
            Timestamp::from_secs(4).as_nanos()
        );
    }
}
