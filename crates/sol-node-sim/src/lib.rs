//! # sol-node-sim — a deterministic cloud-node simulator
//!
//! The substrate for the SOL reproduction. The paper evaluates its agents on a
//! real two-socket Xeon server running Hyper-V with production-style VMs; this
//! crate provides the closest synthetic equivalent: a deterministic,
//! discrete-time node simulator exposing exactly the telemetry and control
//! surfaces the agents use.
//!
//! * [`cpu_node`] — a node with an opaque VM, DVFS frequency control,
//!   hypervisor CPU counters (IPS, α), and a power meter (SmartOverclock).
//! * [`harvest_node`] — a node with a latency-sensitive primary VM and an
//!   ElasticVM fed by harvested cores, exposing CPU-usage samples and vCPU
//!   wait times (SmartHarvest).
//! * [`memory_node`] — a two-tier memory system with per-batch access bits,
//!   Zipf-skewed access generators, and local/remote access counters
//!   (SmartMemory).
//! * [`multi_node`] — one physical node composing any set of substrates
//!   (CPU, harvest, memory, extras) with declared couplings for multi-agent
//!   co-location runs.
//! * [`workload`] — the CPU workload models from the paper's evaluation
//!   (Synthetic, ObjectStore, DiskSpeed).
//! * [`power`], [`counters`], [`metrics`], [`shared`] — supporting pieces.
//!
//! Fault injection (bad counter readings, scan failures, scheduling delays via
//! the SOL runtime) reproduces the failure conditions of paper §6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counters;
pub mod cpu_node;
pub mod harvest_node;
pub mod memory_node;
pub mod metrics;
pub mod multi_node;
pub mod power;
pub mod shared;
pub mod workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::counters::{CounterSample, CpuCounters};
    pub use crate::cpu_node::{CpuNode, CpuNodeConfig, CpuTracePoint};
    pub use crate::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig, UsageSample};
    pub use crate::memory_node::{
        MemoryNode, MemoryNodeConfig, MemoryWorkloadKind, RemoteFractionSample, ScanResult, Tier,
    };
    pub use crate::metrics::{normalize, percent_change, TimeSeries};
    pub use crate::multi_node::{
        Coupling, MultiNode, MultiNodeBuilder, MEMORY_PRESSURE_LATENCY_GAIN,
    };
    pub use crate::power::{EnergyMeter, PowerModel, FREQUENCY_LEVELS_GHZ, NOMINAL_FREQUENCY_GHZ};
    pub use crate::shared::Shared;
    pub use crate::workload::{
        CpuWorkload, DiskSpeed, ObjectStore, OverclockWorkloadKind, PerfReport, SyntheticBatch,
        WorkloadDemand,
    };
}
