//! The simulated node used by the SmartHarvest experiments (paper §5.2, §6.3).
//!
//! A [`HarvestNode`] hosts a latency-sensitive primary VM and an ElasticVM
//! that receives harvested cores. The agent samples the primary VM's CPU usage
//! through the hypervisor, predicts how many cores the primary will need in
//! the next 25 ms, and loans the rest to the ElasticVM — returning them as
//! soon as the primary needs them. The node tracks the primary's vCPU wait
//! time (the Actuator safeguard signal) and request latency (the evaluation
//! metric), plus how many core-seconds the ElasticVM actually received.

use serde::{Deserialize, Serialize};

use sol_core::runtime::Environment;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::footprint::MemoryFootprint;
use sol_ml::online_stats::SlidingWindow;

/// A latency-sensitive service with bursty CPU demand, standing in for the
/// TailBench workloads (`image-dnn`, `moses`) the paper uses as primary VMs.
///
/// Demand alternates deterministically between a low baseline and periodic
/// bursts, so experiments can align fault injection with demand increases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstyService {
    name: &'static str,
    /// Cores used between bursts.
    pub baseline_cores: f64,
    /// Cores used during a burst.
    pub burst_cores: f64,
    /// Time between burst starts.
    pub burst_period: SimDuration,
    /// Burst duration.
    pub burst_length: SimDuration,
    /// Request latency when the VM has all the cores it wants, in ms.
    pub base_latency_ms: f64,
    /// How strongly starvation inflates latency.
    pub starvation_penalty: f64,
}

impl BurstyService {
    /// The `image-dnn` image-recognition service from TailBench: long bursts
    /// of heavy CPU use.
    pub fn image_dnn() -> Self {
        BurstyService {
            name: "image-dnn",
            baseline_cores: 1.5,
            burst_cores: 6.0,
            burst_period: SimDuration::from_millis(2_000),
            burst_length: SimDuration::from_millis(900),
            base_latency_ms: 20.0,
            starvation_penalty: 8.0,
        }
    }

    /// The `moses` language-translation service from TailBench: shorter, more
    /// frequent bursts.
    pub fn moses() -> Self {
        BurstyService {
            name: "moses",
            baseline_cores: 1.0,
            burst_cores: 5.0,
            burst_period: SimDuration::from_millis(1_600),
            burst_length: SimDuration::from_millis(700),
            base_latency_ms: 12.0,
            starvation_penalty: 10.0,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// How long demand takes to ramp from the baseline to the burst level.
    /// Real services ramp up as requests queue; the ramp is also what makes
    /// the next-epoch demand learnable from short-horizon telemetry.
    pub const RAMP: SimDuration = SimDuration::from_millis(400);

    /// CPU demand (cores) at `now`.
    pub fn demand(&self, now: Timestamp) -> f64 {
        let phase = now.as_nanos() % self.burst_period.as_nanos().max(1);
        let ramp = Self::RAMP.as_nanos();
        if phase < self.burst_length.as_nanos() {
            if phase < ramp {
                let progress = phase as f64 / ramp as f64;
                self.baseline_cores + progress * (self.burst_cores - self.baseline_cores)
            } else {
                self.burst_cores
            }
        } else {
            self.baseline_cores
        }
    }

    /// Whether a burst (including its ramp) is in progress at `now`.
    pub fn in_burst(&self, now: Timestamp) -> bool {
        let phase = now.as_nanos() % self.burst_period.as_nanos().max(1);
        phase < self.burst_length.as_nanos()
    }
}

/// One hypervisor CPU-usage sample for the primary VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageSample {
    /// When the sample was taken.
    pub at: Timestamp,
    /// Cores the primary VM actually used during the last step.
    pub used_cores: f64,
    /// Cores currently allocated to the primary VM.
    pub allocated_cores: f64,
}

impl UsageSample {
    /// Whether the primary VM used (essentially) all its allocated cores —
    /// the ambiguous case SmartHarvest's data validation discards (paper
    /// §5.2: during full utilization it is impossible to distinguish true
    /// demand from under-provisioning).
    pub fn is_saturated(&self) -> bool {
        self.used_cores >= self.allocated_cores - 1e-9
    }
}

/// Configuration for a [`HarvestNode`].
#[derive(Debug, Clone)]
pub struct HarvestNodeConfig {
    /// Total physical cores shared by the primary VM and the ElasticVM.
    pub total_cores: usize,
    /// Minimum cores that must always stay with the primary VM.
    pub min_primary_cores: usize,
    /// Integration step (the paper samples usage every 50 µs; the simulator
    /// defaults to 1 ms, which preserves the burst dynamics at ~40× lower
    /// simulation cost).
    pub step: SimDuration,
    /// Window length for the P99 wait-time safeguard signal.
    pub wait_window: usize,
    /// Window length for the P99 request-latency signal. The default (4096)
    /// matches the historical hardcoded window; large fleet grids can shrink
    /// it to cut per-node memory (the window is the node's largest buffer).
    pub latency_window: usize,
}

impl Default for HarvestNodeConfig {
    fn default() -> Self {
        HarvestNodeConfig {
            total_cores: 8,
            min_primary_cores: 1,
            step: SimDuration::from_millis(1),
            wait_window: 2_000,
            latency_window: 4_096,
        }
    }
}

/// A simulated node hosting a primary VM plus an ElasticVM fed by harvested
/// cores.
#[derive(Debug, Clone)]
pub struct HarvestNode {
    config: HarvestNodeConfig,
    service: BurstyService,
    /// Relative speed of the node's cores (1.0 = nominal). When a co-located
    /// overclocking agent raises the frequency, the same work occupies fewer
    /// core-seconds, so the primary VM's core demand shrinks by this factor.
    core_speed_factor: f64,
    /// Multiplier on the primary VM's service time (1.0 = nominal). Memory
    /// pressure from a co-located tiered-memory substrate inflates it: work
    /// stalled on remote accesses holds its cores longer and its requests
    /// take longer.
    service_time_factor: f64,
    primary_cores: usize,
    now: Timestamp,
    last_used_cores: f64,
    latencies: SlidingWindow,
    all_latencies_worst: f64,
    latency_sum: f64,
    latency_count: u64,
    wait_window: SlidingWindow,
    total_wait: SimDuration,
    harvested_core_seconds: f64,
    starved_steps: u64,
    total_steps: u64,
}

impl HarvestNode {
    /// Creates a node running `service` as the primary VM. The primary starts
    /// with all cores (nothing harvested).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero cores, zero step, or
    /// `min_primary_cores` exceeding `total_cores`).
    pub fn new(service: BurstyService, config: HarvestNodeConfig) -> Self {
        assert!(config.total_cores > 0, "node needs cores");
        assert!(!config.step.is_zero(), "step must be non-zero");
        assert!(
            config.min_primary_cores <= config.total_cores,
            "min_primary_cores must not exceed total_cores"
        );
        let primary = config.total_cores;
        HarvestNode {
            latencies: SlidingWindow::new(config.latency_window),
            wait_window: SlidingWindow::new(config.wait_window),
            config,
            service,
            core_speed_factor: 1.0,
            service_time_factor: 1.0,
            primary_cores: primary,
            now: Timestamp::ZERO,
            last_used_cores: 0.0,
            all_latencies_worst: 0.0,
            latency_sum: 0.0,
            latency_count: 0,
            total_wait: SimDuration::ZERO,
            harvested_core_seconds: 0.0,
            starved_steps: 0,
            total_steps: 0,
        }
    }

    /// Total physical cores on the node.
    pub fn total_cores(&self) -> usize {
        self.config.total_cores
    }

    /// Cores currently allocated to the primary VM.
    pub fn primary_cores(&self) -> usize {
        self.primary_cores
    }

    /// Cores currently loaned to the ElasticVM.
    pub fn harvested_cores(&self) -> usize {
        self.config.total_cores - self.primary_cores
    }

    /// The primary workload's name.
    pub fn workload_name(&self) -> &'static str {
        self.service.name()
    }

    /// Assigns `cores` to the primary VM (the rest go to the ElasticVM).
    /// Values are clamped to `[min_primary_cores, total_cores]`.
    pub fn set_primary_cores(&mut self, cores: usize) {
        self.primary_cores = cores.clamp(self.config.min_primary_cores, self.config.total_cores);
    }

    /// Returns every core to the primary VM (mitigation / clean-up).
    pub fn return_all_cores(&mut self) {
        self.primary_cores = self.config.total_cores;
    }

    /// Sets the relative core speed (1.0 = nominal), clamped to `[0.1, 10]`.
    ///
    /// Co-location plumbing: when an overclocking agent shares the node, the
    /// primary VM's work completes faster on faster cores, so its core demand
    /// scales by `1 / factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn set_core_speed_factor(&mut self, factor: f64) {
        assert!(factor.is_finite(), "core speed factor must be finite");
        self.core_speed_factor = factor.clamp(0.1, 10.0);
    }

    /// The current relative core speed.
    pub fn core_speed_factor(&self) -> f64 {
        self.core_speed_factor
    }

    /// Sets the service-time multiplier (1.0 = nominal), clamped to
    /// `[1.0, 10.0]`.
    ///
    /// Co-location plumbing for the memory-pressure→latency coupling: when a
    /// co-located tiered-memory substrate serves a growing fraction of
    /// accesses from the remote tier, the primary VM's work stalls longer
    /// per request, inflating both its core demand and its request latency
    /// by this factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn set_service_time_factor(&mut self, factor: f64) {
        assert!(factor.is_finite(), "service time factor must be finite");
        self.service_time_factor = factor.clamp(1.0, 10.0);
    }

    /// The current service-time multiplier.
    pub fn service_time_factor(&self) -> f64 {
        self.service_time_factor
    }

    /// Takes one hypervisor usage sample for the primary VM.
    pub fn sample_primary_usage(&self) -> UsageSample {
        UsageSample {
            at: self.now,
            used_cores: self.last_used_cores,
            allocated_cores: self.primary_cores as f64,
        }
    }

    /// P99 of the per-step vCPU wait time over the recent window, in
    /// milliseconds (the Actuator safeguard signal).
    pub fn p99_wait_ms(&self) -> f64 {
        self.wait_window.quantile(0.99)
    }

    /// P99 request latency of the primary VM over the recent window, in ms.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latencies.quantile(0.99)
    }

    /// Mean request latency of the primary VM over the whole run, in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum / self.latency_count as f64
        }
    }

    /// Worst single-step latency observed over the whole run, in ms.
    pub fn worst_latency_ms(&self) -> f64 {
        self.all_latencies_worst
    }

    /// Total vCPU wait time accumulated by the primary VM.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// Core-seconds delivered to the ElasticVM so far (the benefit of
    /// harvesting).
    pub fn harvested_core_seconds(&self) -> f64 {
        self.harvested_core_seconds
    }

    /// Fraction of steps in which the primary VM was starved of cores.
    pub fn starvation_fraction(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.starved_steps as f64 / self.total_steps as f64
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    fn step_once(&mut self, dt: SimDuration) {
        let now = self.now;
        let demand = self.service.demand(now) * self.service_time_factor / self.core_speed_factor;
        let allocated = self.primary_cores as f64;
        let used = demand.min(allocated);
        let shortfall = (demand - allocated).max(0.0);

        self.last_used_cores = used;
        self.total_steps += 1;

        // vCPU wait: virtual cores that wanted to run but had no physical core.
        let wait_ms =
            if demand > 0.0 { (shortfall / demand) * dt.as_secs_f64() * 1e3 } else { 0.0 };
        self.wait_window.push(wait_ms);
        if shortfall > 0.0 {
            self.starved_steps += 1;
            self.total_wait += SimDuration::from_secs_f64(wait_ms / 1e3);
        }

        // Request latency inflates when the VM is starved during a burst and
        // with memory pressure (remote accesses stretch every request).
        let starvation = if demand > 0.0 { shortfall / demand } else { 0.0 };
        let latency = self.service.base_latency_ms
            * self.service_time_factor
            * (1.0 + self.service.starvation_penalty * starvation);
        self.latencies.push(latency);
        self.latency_sum += latency;
        self.latency_count += 1;
        if latency > self.all_latencies_worst {
            self.all_latencies_worst = latency;
        }

        // The ElasticVM soaks up every core not allocated to the primary.
        let harvested = (self.config.total_cores - self.primary_cores) as f64;
        self.harvested_core_seconds += harvested * dt.as_secs_f64();

        self.now = now + dt;
    }
}

impl Environment for HarvestNode {
    fn advance_to(&mut self, now: Timestamp) {
        while self.now < now {
            let remaining = now.duration_since(self.now);
            let dt = remaining.min(self.config.step);
            self.step_once(dt);
        }
    }

    fn mem_bytes(&self) -> usize {
        MemoryFootprint::mem_bytes(self)
    }
}

impl MemoryFootprint for HarvestNode {
    fn mem_bytes(&self) -> usize {
        // The two latency windows are the node's only heap buffers.
        std::mem::size_of::<Self>()
            + (self.latencies.mem_bytes() - std::mem::size_of::<SlidingWindow>())
            + (self.wait_window.mem_bytes() - std::mem::size_of::<SlidingWindow>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_service_alternates_demand() {
        let s = BurstyService::image_dnn();
        // During the ramp demand rises towards the burst level.
        let ramping = s.demand(Timestamp::from_millis(75));
        assert!(ramping > s.baseline_cores && ramping < s.burst_cores);
        assert_eq!(s.demand(Timestamp::from_millis(500)), 6.0);
        assert!(s.in_burst(Timestamp::from_millis(500)));
        assert_eq!(s.demand(Timestamp::from_millis(1_000)), 1.5);
        assert!(!s.in_burst(Timestamp::from_millis(1_000)));
        // Periodic: the next burst starts one period later.
        assert!(s.in_burst(Timestamp::from_millis(2_300)));
    }

    #[test]
    fn no_harvesting_means_no_latency_impact() {
        let mut node = HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default());
        node.advance_to(Timestamp::from_secs(20));
        assert_eq!(node.harvested_cores(), 0);
        assert!((node.p99_latency_ms() - BurstyService::moses().base_latency_ms).abs() < 1e-9);
        assert_eq!(node.p99_wait_ms(), 0.0);
        assert_eq!(node.starvation_fraction(), 0.0);
    }

    #[test]
    fn over_harvesting_starves_bursts_and_inflates_latency() {
        let mut node = HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        // Leave the primary only 2 cores: bursts need 6.
        node.set_primary_cores(2);
        node.advance_to(Timestamp::from_secs(20));
        assert!(node.p99_latency_ms() > 2.0 * BurstyService::image_dnn().base_latency_ms);
        assert!(node.p99_wait_ms() > 0.0);
        assert!(node.harvested_core_seconds() > 0.0);
        assert!(node.starvation_fraction() > 0.2);
    }

    #[test]
    fn perfect_prediction_harvests_without_latency_impact() {
        let service = BurstyService::image_dnn();
        let mut node = HarvestNode::new(service.clone(), HarvestNodeConfig::default());
        let step = SimDuration::from_millis(25);
        let mut t = Timestamp::ZERO;
        while t < Timestamp::from_secs(20) {
            let next = t + step;
            // Provision exactly the demand over the next control interval.
            let worst = (0..25)
                .map(|ms| service.demand(t + SimDuration::from_millis(ms)))
                .fold(0.0f64, f64::max);
            node.set_primary_cores(worst.ceil() as usize);
            node.advance_to(next);
            t = next;
        }
        assert!(node.harvested_core_seconds() > 20.0, "should harvest idle capacity");
        assert!(
            node.p99_latency_ms() < 1.05 * service.base_latency_ms,
            "perfect prediction should not hurt latency: {}",
            node.p99_latency_ms()
        );
    }

    #[test]
    fn usage_samples_report_saturation() {
        let mut node = HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        node.set_primary_cores(2);
        node.advance_to(Timestamp::from_millis(100));
        let s = node.sample_primary_usage();
        assert!(s.is_saturated(), "burst of 6 cores on 2 allocated is saturated");
        node.return_all_cores();
        node.advance_to(Timestamp::from_millis(1_000));
        let s = node.sample_primary_usage();
        assert!(!s.is_saturated());
        assert_eq!(s.allocated_cores, 8.0);
    }

    #[test]
    fn faster_cores_shrink_primary_demand() {
        let mut slow = HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        let mut fast = HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        fast.set_core_speed_factor(1.5);
        // Starve both: bursts need 6 cores at nominal speed, 4 when 1.5x.
        slow.set_primary_cores(2);
        fast.set_primary_cores(2);
        slow.advance_to(Timestamp::from_secs(20));
        fast.advance_to(Timestamp::from_secs(20));
        assert!(fast.p99_latency_ms() < slow.p99_latency_ms());
        assert!(fast.total_wait() < slow.total_wait());
        // A nonsense factor is clamped, not applied raw.
        fast.set_core_speed_factor(1e9);
        assert_eq!(fast.core_speed_factor(), 10.0);
    }

    #[test]
    fn memory_pressure_inflates_demand_and_latency() {
        let mut nominal =
            HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        let mut pressured =
            HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default());
        pressured.set_service_time_factor(2.0);
        // Give both only 4 cores: at nominal speed bursts need 6 cores, under
        // 2x memory pressure they need 12 — the pressured node starves more.
        nominal.set_primary_cores(4);
        pressured.set_primary_cores(4);
        nominal.advance_to(Timestamp::from_secs(20));
        pressured.advance_to(Timestamp::from_secs(20));
        assert!(pressured.p99_latency_ms() > nominal.p99_latency_ms());
        assert!(pressured.total_wait() > nominal.total_wait());
        // Even unstarved (moses bursts need 5 * 1.5 = 7.5 of 8 cores), the
        // base latency scales with the factor.
        let mut roomy = HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default());
        roomy.set_service_time_factor(1.5);
        roomy.advance_to(Timestamp::from_secs(5));
        assert!(
            (roomy.p99_latency_ms() - 1.5 * BurstyService::moses().base_latency_ms).abs() < 1e-9
        );
        // Out-of-range factors clamp instead of applying raw.
        roomy.set_service_time_factor(0.0);
        assert_eq!(roomy.service_time_factor(), 1.0);
        roomy.set_service_time_factor(1e9);
        assert_eq!(roomy.service_time_factor(), 10.0);
    }

    #[test]
    fn set_primary_cores_is_clamped() {
        let mut node = HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default());
        node.set_primary_cores(0);
        assert_eq!(node.primary_cores(), 1);
        node.set_primary_cores(100);
        assert_eq!(node.primary_cores(), 8);
    }
}
