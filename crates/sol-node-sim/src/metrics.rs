//! Experiment metric helpers: normalized comparisons and time series.

use serde::{Deserialize, Serialize};

use sol_core::time::Timestamp;

/// A named time series of scalar samples, used by experiments that reproduce
/// the paper's time-series figures (Figures 5 and 8).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Timestamp, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, at: Timestamp, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded samples in insertion order.
    pub fn points(&self) -> &[(Timestamp, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the sample values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean of values whose timestamps fall in `[from, to)`.
    pub fn mean_between(&self, from: Timestamp, to: Timestamp) -> f64 {
        let vals: Vec<f64> =
            self.points.iter().filter(|(t, _)| *t >= from && *t < to).map(|(_, v)| *v).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Maximum value (0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// Normalizes `value` against `baseline`, returning 1.0 when they are equal.
/// Returns 0 when the baseline is zero.
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Percentage change of `value` relative to `baseline` (e.g. +268 for a 268%
/// increase). Returns 0 when the baseline is zero.
pub fn percent_change(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_basic_stats() {
        let mut ts = TimeSeries::new("power");
        ts.push(Timestamp::from_secs(1), 100.0);
        ts.push(Timestamp::from_secs(2), 200.0);
        ts.push(Timestamp::from_secs(3), 300.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), 200.0);
        assert_eq!(ts.max(), 300.0);
        assert_eq!(ts.mean_between(Timestamp::from_secs(2), Timestamp::from_secs(4)), 250.0);
        assert_eq!(ts.name(), "power");
    }

    #[test]
    fn normalization_helpers() {
        assert_eq!(normalize(3.0, 2.0), 1.5);
        assert_eq!(normalize(3.0, 0.0), 0.0);
        assert!((percent_change(368.0, 100.0) - 268.0).abs() < 1e-9);
        assert_eq!(percent_change(5.0, 0.0), 0.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let ts = TimeSeries::new("empty");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.max(), 0.0);
    }
}
