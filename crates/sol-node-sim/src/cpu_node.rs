//! The simulated node used by the SmartOverclock experiments.
//!
//! A [`CpuNode`] hosts one opaque VM running a [`CpuWorkload`], exposes the
//! hypervisor-level counters the agent reads (IPS, α), lets the agent change
//! the core frequency, and meters power with the DVFS model. Fault injection
//! (out-of-range IPS readings, per paper §6.2 "Invalid data") is built in.

use rand::Rng;

use sol_core::error::DataError;
use sol_core::runtime::placement::{NodePlacement, PlacementError, WorkloadId, WorkloadUnit};
use sol_core::runtime::Environment;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::footprint::MemoryFootprint;
use sol_ml::sampling::seeded_rng;

use crate::counters::{CounterSample, CpuCounters};
use crate::power::{EnergyMeter, PowerModel, FREQUENCY_LEVELS_GHZ, NOMINAL_FREQUENCY_GHZ};
use crate::workload::{CpuWorkload, PerfReport};

/// Instructions per cycle achieved by fully productive (non-stalled) cycles.
const BASE_IPC: f64 = 2.0;

/// Configuration for a [`CpuNode`].
#[derive(Debug, Clone)]
pub struct CpuNodeConfig {
    /// Number of physical cores visible to the VM (the paper's server has 26
    /// per socket).
    pub cores: usize,
    /// Nominal frequency in GHz (safe default).
    pub nominal_ghz: f64,
    /// Frequencies the agent may select, in GHz.
    pub available_ghz: Vec<f64>,
    /// Internal integration step.
    pub step: SimDuration,
    /// Probability that a counter sample returns an out-of-range IPS reading
    /// (fault injection for Figure 2).
    pub bad_ips_probability: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Power model.
    pub power_model: PowerModel,
    /// Cores' worth of dynamically placeable workload slots (for fleet-level
    /// placement: VM arrivals, departures, migrations). `0.0` — the default —
    /// means the node hosts no placeable work and every
    /// [`CpuNode::attach_workload`] fails with
    /// [`PlacementError::Unsupported`]. Placed VMs contend with the primary
    /// workload for the node's physical cores (the primary has priority), so
    /// overcommitting `placeable_cores` beyond the node's idle capacity is
    /// how placement pressure becomes interference.
    pub placeable_cores: f64,
}

impl Default for CpuNodeConfig {
    fn default() -> Self {
        CpuNodeConfig {
            cores: 26,
            nominal_ghz: NOMINAL_FREQUENCY_GHZ,
            available_ghz: FREQUENCY_LEVELS_GHZ.to_vec(),
            step: SimDuration::from_millis(25),
            bad_ips_probability: 0.0,
            seed: 42,
            power_model: PowerModel::default(),
            placeable_cores: 0.0,
        }
    }
}

impl CpuNodeConfig {
    /// Returns the config with its fault-injection RNG reseeded — the hook
    /// fleet recipes use to give every simulated server an independent
    /// random stream (per-node seed derivation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given placeable-slot capacity (see
    /// [`placeable_cores`](Self::placeable_cores)).
    pub fn with_placeable_cores(mut self, cores: f64) -> Self {
        self.placeable_cores = cores;
        self
    }
}

/// One dynamically placed VM resident on a [`CpuNode`].
#[derive(Debug, Clone, Copy)]
struct PlacedVm {
    unit: WorkloadUnit,
    /// Frequency-scaled core-seconds of compute delivered to the VM since it
    /// was attached to *this* node (migrations reset the counter).
    core_seconds: f64,
}

/// One point of the frequency/power trace kept for time-series figures
/// (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTracePoint {
    /// Time of the sample.
    pub at: Timestamp,
    /// Frequency in GHz at that time.
    pub frequency_ghz: f64,
    /// Instantaneous node power in watts.
    pub power_watts: f64,
    /// Instantaneous α.
    pub alpha: f64,
}

/// A simulated server node hosting one VM, with frequency control.
pub struct CpuNode {
    config: CpuNodeConfig,
    workload: Box<dyn CpuWorkload>,
    current_ghz: f64,
    counters: CpuCounters,
    last_sample_counters: CpuCounters,
    last_sample_at: Timestamp,
    energy: EnergyMeter,
    now: Timestamp,
    rng: rand::rngs::StdRng,
    trace: Vec<CpuTracePoint>,
    trace_enabled: bool,
    last_alpha: f64,
    frequency_changes: u64,
    placed: Vec<PlacedVm>,
    placed_core_seconds: f64,
}

impl std::fmt::Debug for CpuNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuNode")
            .field("workload", &self.workload.name())
            .field("now", &self.now)
            .field("current_ghz", &self.current_ghz)
            .field("avg_power_watts", &self.energy.average_watts())
            .finish()
    }
}

impl CpuNode {
    /// Creates a node running `workload` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no cores, no available frequencies, a
    /// zero step, or a bad-IPS probability outside `[0, 1]`.
    pub fn new(workload: Box<dyn CpuWorkload>, config: CpuNodeConfig) -> Self {
        assert!(config.cores > 0, "node needs at least one core");
        assert!(!config.available_ghz.is_empty(), "need at least one frequency");
        assert!(!config.step.is_zero(), "step must be non-zero");
        assert!(
            (0.0..=1.0).contains(&config.bad_ips_probability),
            "bad-IPS probability must be in [0, 1]"
        );
        let rng = seeded_rng(config.seed);
        let nominal = config.nominal_ghz;
        CpuNode {
            config,
            workload,
            current_ghz: nominal,
            counters: CpuCounters::default(),
            last_sample_counters: CpuCounters::default(),
            last_sample_at: Timestamp::ZERO,
            energy: EnergyMeter::new(),
            now: Timestamp::ZERO,
            rng,
            trace: Vec::new(),
            trace_enabled: false,
            last_alpha: 0.0,
            frequency_changes: 0,
            placed: Vec::new(),
            placed_core_seconds: 0.0,
        }
    }

    /// Attaches a dynamically placed VM to the node's placeable slots.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::Unsupported`] when the node has no placeable
    /// slots ([`CpuNodeConfig::placeable_cores`] is zero),
    /// [`PlacementError::DuplicateWorkload`] when a unit with the same id is
    /// already resident, and [`PlacementError::CapacityExceeded`] when the
    /// unit does not fit the remaining slot capacity.
    pub fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        if self.config.placeable_cores <= 0.0 {
            return Err(PlacementError::Unsupported);
        }
        if self.placed.iter().any(|vm| vm.unit.id == unit.id) {
            return Err(PlacementError::DuplicateWorkload(unit.id));
        }
        let used: f64 = self.placed.iter().map(|vm| vm.unit.cores).sum();
        let free = self.config.placeable_cores - used;
        if unit.cores > free + 1e-9 {
            return Err(PlacementError::CapacityExceeded { requested: unit.cores, free });
        }
        self.placed.push(PlacedVm { unit, core_seconds: 0.0 });
        Ok(())
    }

    /// Detaches a placed VM, returning its descriptor so a migration can
    /// re-attach it elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when no resident VM has
    /// the id.
    pub fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        match self.placed.iter().position(|vm| vm.unit.id == id) {
            Some(pos) => Ok(self.placed.remove(pos).unit),
            None => Err(PlacementError::UnknownWorkload(id)),
        }
    }

    /// The node's current placeable state: slot capacity and resident VMs in
    /// admission order.
    pub fn placement(&self) -> NodePlacement {
        NodePlacement {
            capacity: self.config.placeable_cores,
            resident: self.placed.iter().map(|vm| vm.unit).collect(),
        }
    }

    /// Cores demanded by the currently placed VMs.
    pub fn placed_cores(&self) -> f64 {
        self.placed.iter().map(|vm| vm.unit.cores).sum()
    }

    /// Frequency-scaled core-seconds delivered to placed VMs over the whole
    /// run, including VMs that have since departed.
    pub fn placed_core_seconds(&self) -> f64 {
        self.placed_core_seconds
    }

    /// Frequency-scaled core-seconds delivered to one resident VM since it
    /// was attached to this node.
    pub fn placed_progress(&self, id: WorkloadId) -> Option<f64> {
        self.placed.iter().find(|vm| vm.unit.id == id).map(|vm| vm.core_seconds)
    }

    /// Enables recording of a (time, frequency, power, α) trace.
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called).
    pub fn trace(&self) -> &[CpuTracePoint] {
        &self.trace
    }

    /// Number of cores on the node.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    /// The node's nominal frequency in GHz.
    pub fn nominal_frequency_ghz(&self) -> f64 {
        self.config.nominal_ghz
    }

    /// Frequencies the agent may select.
    pub fn available_frequencies_ghz(&self) -> &[f64] {
        &self.config.available_ghz
    }

    /// The currently configured core frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.current_ghz
    }

    /// Sets the core frequency for the VM's cores.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not one of the available frequencies.
    pub fn set_frequency_ghz(&mut self, ghz: f64) {
        assert!(
            self.config.available_ghz.iter().any(|f| (f - ghz).abs() < 1e-9),
            "frequency {ghz} GHz is not available on this node"
        );
        if (ghz - self.current_ghz).abs() > 1e-9 {
            self.frequency_changes += 1;
        }
        self.current_ghz = ghz;
    }

    /// Restores the nominal frequency (used by `Mitigate` and `CleanUp`).
    pub fn restore_nominal_frequency(&mut self) {
        self.current_ghz = self.config.nominal_ghz;
    }

    /// Number of times the frequency setting changed.
    pub fn frequency_changes(&self) -> u64 {
        self.frequency_changes
    }

    /// Sets the probability of returning an out-of-range IPS reading.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_bad_ips_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.config.bad_ips_probability = p;
    }

    /// Takes a counter sample covering the interval since the previous call.
    /// With fault injection enabled, the IPS value may be corrupted to an
    /// out-of-range value; the sample itself is still returned so the agent's
    /// data validation can catch it.
    ///
    /// # Errors
    ///
    /// Never fails in the current model; the `Result` mirrors the production
    /// interface where counter reads can fail outright.
    pub fn take_counter_sample(&mut self) -> Result<CounterSample, DataError> {
        let delta = self.counters.delta_since(&self.last_sample_counters);
        let interval = self.now.duration_since(self.last_sample_at);
        self.last_sample_counters = self.counters;
        self.last_sample_at = self.now;
        let mut sample = CounterSample::from_delta(self.now, interval, &delta, self.current_ghz);
        if self.config.bad_ips_probability > 0.0
            && self.rng.gen::<f64>() < self.config.bad_ips_probability
        {
            // A corrupted reading far outside the physically possible range
            // (max_freq * max_IPC * cores), as injected in paper §6.2.
            sample.ips = self.max_plausible_ips() * (10.0 + self.rng.gen::<f64>() * 10.0);
        }
        Ok(sample)
    }

    /// The largest physically plausible IPS value for this node
    /// (`max_freq * max_IPC * cores`), used by the agent's data validation.
    pub fn max_plausible_ips(&self) -> f64 {
        let max_freq = self.config.available_ghz.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max_freq * 1e9 * BASE_IPC * self.config.cores as f64
    }

    /// The α value over the last integration step.
    pub fn current_alpha(&self) -> f64 {
        self.last_alpha
    }

    /// Average node power since the start of the run, in watts.
    pub fn average_power_watts(&self) -> f64 {
        self.energy.average_watts()
    }

    /// Total energy consumed, in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy.joules()
    }

    /// Performance report from the hosted workload.
    pub fn performance(&self) -> PerfReport {
        self.workload.performance()
    }

    /// Name of the hosted workload.
    pub fn workload_name(&self) -> &'static str {
        self.workload.name()
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    fn step_once(&mut self, dt: SimDuration) {
        let now = self.now;
        let demand = self.workload.demand(now);
        let granted = demand.cores.min(self.config.cores as f64);
        let freq_factor = self.current_ghz / self.config.nominal_ghz;
        self.workload.deliver(now, dt, granted, freq_factor);

        let secs = dt.as_secs_f64();
        let hz = self.current_ghz * 1e9;

        // Placed VMs run on whatever the primary workload leaves idle (the
        // primary has priority); an overcommitted slot budget therefore
        // starves the placed VMs rather than the primary. The guard keeps
        // the float arithmetic byte-identical to the placement-free node
        // when nothing is placed.
        let mut placed_granted = 0.0;
        let mut placed_unhalted = 0.0;
        let mut placed_stalled = 0.0;
        if !self.placed.is_empty() {
            let leftover = (self.config.cores as f64 - granted).max(0.0);
            let placed_demand: f64 = self.placed.iter().map(|vm| vm.unit.cores).sum();
            let share = if placed_demand > leftover { leftover / placed_demand } else { 1.0 };
            for vm in &mut self.placed {
                let vm_granted = vm.unit.cores * share;
                let delivered = vm_granted * freq_factor * secs;
                vm.core_seconds += delivered;
                self.placed_core_seconds += delivered;
                let vm_unhalted = vm_granted * hz * secs;
                placed_granted += vm_granted;
                placed_unhalted += vm_unhalted;
                placed_stalled += vm_unhalted * (1.0 - vm.unit.cpu_bound_fraction);
            }
        }

        // Counters (primary + placed VMs).
        let total_cycles = self.config.cores as f64 * hz * secs;
        let primary_unhalted = granted * hz * secs;
        let unhalted = primary_unhalted + placed_unhalted;
        let stalled = primary_unhalted * (1.0 - demand.cpu_bound_fraction) + placed_stalled;
        let instructions = (unhalted - stalled) * BASE_IPC;
        let delta = CpuCounters {
            instructions,
            unhalted_cycles: unhalted,
            stalled_cycles: stalled,
            total_cycles,
        };
        self.last_alpha = delta.alpha();
        self.counters.accumulate(&delta);

        // Power.
        let utilization = ((granted + placed_granted) / self.config.cores as f64).clamp(0.0, 1.0);
        let watts = self.config.power_model.node_power_watts(
            self.current_ghz,
            utilization,
            self.config.cores,
        );
        self.energy.record(watts, dt);

        if self.trace_enabled {
            self.trace.push(CpuTracePoint {
                at: now,
                frequency_ghz: self.current_ghz,
                power_watts: watts,
                alpha: self.last_alpha,
            });
        }

        self.now = now + dt;
    }
}

impl MemoryFootprint for CpuNode {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.config.available_ghz.capacity() * std::mem::size_of::<f64>()
            + self.trace.capacity() * std::mem::size_of::<CpuTracePoint>()
            + self.placed.capacity() * std::mem::size_of::<PlacedVm>()
            + std::mem::size_of::<Box<dyn CpuWorkload>>()
            + self.workload.mem_bytes()
    }
}

impl Environment for CpuNode {
    fn advance_to(&mut self, now: Timestamp) {
        while self.now < now {
            let remaining = now.duration_since(self.now);
            let dt = remaining.min(self.config.step);
            self.step_once(dt);
        }
    }

    fn mem_bytes(&self) -> usize {
        MemoryFootprint::mem_bytes(self)
    }

    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        CpuNode::attach_workload(self, unit)
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        CpuNode::detach_workload(self, id)
    }

    fn placement(&self) -> NodePlacement {
        CpuNode::placement(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OverclockWorkloadKind, SyntheticBatch};

    fn node(kind: OverclockWorkloadKind) -> CpuNode {
        CpuNode::new(kind.build(8), CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() })
    }

    #[test]
    fn advancing_meters_power_and_counters() {
        let mut n = node(OverclockWorkloadKind::ObjectStore);
        n.advance_to(Timestamp::from_secs(10));
        assert!(n.average_power_watts() > 0.0);
        let sample = n.take_counter_sample().unwrap();
        assert!(sample.ips > 0.0);
        assert!(sample.alpha > 0.5, "ObjectStore is CPU-bound, alpha = {}", sample.alpha);
        assert!(sample.ips <= n.max_plausible_ips());
    }

    #[test]
    fn overclocking_raises_power_and_ips_for_cpu_bound_workload() {
        let mut nominal = node(OverclockWorkloadKind::ObjectStore);
        let mut turbo = node(OverclockWorkloadKind::ObjectStore);
        turbo.set_frequency_ghz(2.3);
        nominal.advance_to(Timestamp::from_secs(20));
        turbo.advance_to(Timestamp::from_secs(20));
        assert!(turbo.average_power_watts() > nominal.average_power_watts() * 1.3);
        let ips_nominal = nominal.take_counter_sample().unwrap().ips;
        let ips_turbo = turbo.take_counter_sample().unwrap().ips;
        assert!(ips_turbo > ips_nominal * 1.4);
        assert!(turbo.performance().score > nominal.performance().score);
    }

    #[test]
    fn disk_bound_workload_has_low_alpha_and_flat_performance() {
        let mut nominal = node(OverclockWorkloadKind::DiskSpeed);
        let mut turbo = node(OverclockWorkloadKind::DiskSpeed);
        turbo.set_frequency_ghz(2.3);
        nominal.advance_to(Timestamp::from_secs(20));
        turbo.advance_to(Timestamp::from_secs(20));
        let s = nominal.take_counter_sample().unwrap();
        assert!(s.alpha < 0.2, "DiskSpeed alpha should be low, got {}", s.alpha);
        let ratio = turbo.performance().score / nominal.performance().score;
        assert!((ratio - 1.0).abs() < 0.02, "throughput must not scale with frequency");
        assert!(turbo.average_power_watts() > nominal.average_power_watts());
    }

    #[test]
    fn synthetic_idle_phase_has_low_alpha() {
        // A small batch finishes quickly, then the node idles.
        let workload = SyntheticBatch::new(SimDuration::from_secs(1000), 8.0, 8.0);
        let mut n = CpuNode::new(
            Box::new(workload),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        );
        n.advance_to(Timestamp::from_secs(5));
        let _ = n.take_counter_sample().unwrap();
        n.advance_to(Timestamp::from_secs(60));
        let idle = n.take_counter_sample().unwrap();
        assert!(idle.alpha < 0.05, "idle alpha should be tiny, got {}", idle.alpha);
    }

    #[test]
    fn bad_ips_injection_produces_out_of_range_samples() {
        let mut n = node(OverclockWorkloadKind::ObjectStore);
        n.set_bad_ips_probability(1.0);
        n.advance_to(Timestamp::from_secs(1));
        let s = n.take_counter_sample().unwrap();
        assert!(s.ips > n.max_plausible_ips());
    }

    #[test]
    fn frequency_setting_is_validated_and_counted() {
        let mut n = node(OverclockWorkloadKind::Synthetic);
        n.set_frequency_ghz(1.9);
        n.set_frequency_ghz(1.9);
        n.set_frequency_ghz(2.3);
        assert_eq!(n.frequency_changes(), 2);
        n.restore_nominal_frequency();
        assert_eq!(n.frequency_ghz(), 1.5);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn rejects_unknown_frequency() {
        let mut n = node(OverclockWorkloadKind::Synthetic);
        n.set_frequency_ghz(3.6);
    }

    #[test]
    fn placement_is_rejected_without_placeable_slots() {
        let mut n = node(OverclockWorkloadKind::Synthetic);
        let unit = WorkloadUnit::new(WorkloadId(0), 1.0);
        assert_eq!(n.attach_workload(unit), Err(PlacementError::Unsupported));
        assert_eq!(n.placement(), NodePlacement::none());
    }

    fn placeable_node(kind: OverclockWorkloadKind, placeable: f64) -> CpuNode {
        CpuNode::new(
            kind.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() }.with_placeable_cores(placeable),
        )
    }

    #[test]
    fn attach_detach_respects_capacity_and_identity() {
        let mut n = placeable_node(OverclockWorkloadKind::Synthetic, 4.0);
        let a = WorkloadUnit::new(WorkloadId(1), 2.5);
        let b = WorkloadUnit::new(WorkloadId(2), 2.5);
        n.attach_workload(a).unwrap();
        assert_eq!(n.attach_workload(a), Err(PlacementError::DuplicateWorkload(a.id)));
        assert!(matches!(n.attach_workload(b), Err(PlacementError::CapacityExceeded { .. })));
        let placement = n.placement();
        assert_eq!(placement.capacity, 4.0);
        assert_eq!(placement.resident, vec![a]);
        assert_eq!(n.placed_cores(), 2.5);
        // Detaching frees the capacity and returns the descriptor intact.
        assert_eq!(n.detach_workload(a.id), Ok(a));
        assert_eq!(n.detach_workload(a.id), Err(PlacementError::UnknownWorkload(a.id)));
        n.attach_workload(b).unwrap();
        assert!(n.placement().hosts(b.id));
    }

    #[test]
    fn placed_vms_consume_cores_and_make_progress() {
        // DiskSpeed leaves most of the node idle, so a placed VM runs at its
        // full demand and shows up in utilization, power, and counters.
        let mut idle = placeable_node(OverclockWorkloadKind::DiskSpeed, 4.0);
        let mut hosting = placeable_node(OverclockWorkloadKind::DiskSpeed, 4.0);
        let vm = WorkloadUnit::new(WorkloadId(7), 4.0).with_cpu_bound_fraction(0.9);
        hosting.attach_workload(vm).unwrap();
        idle.advance_to(Timestamp::from_secs(10));
        hosting.advance_to(Timestamp::from_secs(10));
        assert!((hosting.placed_progress(vm.id).unwrap() - 40.0).abs() < 1e-6);
        assert_eq!(hosting.placed_core_seconds(), hosting.placed_progress(vm.id).unwrap());
        assert!(hosting.average_power_watts() > idle.average_power_watts());
        let idle_sample = idle.take_counter_sample().unwrap();
        let hosting_sample = hosting.take_counter_sample().unwrap();
        assert!(hosting_sample.ips > idle_sample.ips * 2.0);
        assert!(hosting_sample.alpha > idle_sample.alpha);
    }

    #[test]
    fn primary_workload_has_priority_over_placed_vms() {
        // ObjectStore wants 6.8 of 8 cores; a 4-core placed VM only gets the
        // ~1.2 idle cores, so its progress is throttled while the primary's
        // performance stays untouched.
        let mut alone = placeable_node(OverclockWorkloadKind::ObjectStore, 4.0);
        let mut contended = placeable_node(OverclockWorkloadKind::ObjectStore, 4.0);
        contended.attach_workload(WorkloadUnit::new(WorkloadId(3), 4.0)).unwrap();
        alone.advance_to(Timestamp::from_secs(10));
        contended.advance_to(Timestamp::from_secs(10));
        let progress = contended.placed_progress(WorkloadId(3)).unwrap();
        assert!(progress > 0.0 && progress < 20.0, "placed VM must be starved, got {progress}");
        assert_eq!(alone.performance().score, contended.performance().score);
    }

    #[test]
    fn node_without_placed_vms_is_byte_identical_to_pre_placement_model() {
        // The placement plumbing must not perturb a single float of the
        // classic node: zero placeable slots and empty slots behave the same.
        let mut classic = node(OverclockWorkloadKind::ObjectStore);
        let mut placeable = placeable_node(OverclockWorkloadKind::ObjectStore, 4.0);
        // Equalize the only intended config difference: core counts match.
        classic.advance_to(Timestamp::from_secs(20));
        placeable.advance_to(Timestamp::from_secs(20));
        assert_eq!(classic.energy_joules().to_bits(), placeable.energy_joules().to_bits());
        assert_eq!(
            classic.take_counter_sample().unwrap().ips.to_bits(),
            placeable.take_counter_sample().unwrap().ips.to_bits()
        );
    }

    #[test]
    fn trace_records_frequency_changes() {
        let mut n = node(OverclockWorkloadKind::ObjectStore);
        n.enable_trace();
        n.advance_to(Timestamp::from_secs(1));
        n.set_frequency_ghz(2.3);
        n.advance_to(Timestamp::from_secs(2));
        let freqs: Vec<f64> = n.trace().iter().map(|p| p.frequency_ghz).collect();
        assert!(freqs.contains(&1.5) && freqs.contains(&2.3));
    }
}
