//! The simulated two-tier memory system used by the SmartMemory experiments
//! (paper §5.3, §6.4).
//!
//! Memory is divided into 2 MB *batches* of 512 4 KB pages. A fast local tier
//! (DRAM) fronts a slower remote tier (disaggregated / persistent memory).
//! Workload accesses follow a Zipf-skewed popularity distribution whose hot
//! set can shift over time. The agent scans per-batch access bits (each scan
//! clears the bits, costing TLB flushes), classifies batches as hot / warm /
//! cold, and migrates warm batches to the remote tier while keeping the
//! fraction of remote accesses under a service-level objective.

use rand::Rng;
use serde::{Deserialize, Serialize};

use sol_core::error::DataError;
use sol_core::runtime::Environment;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::footprint::MemoryFootprint;
use sol_ml::sampling::{seeded_rng, Zipf};

/// Which memory tier a batch currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Fast, expensive first-tier DRAM.
    Local,
    /// Slower second-tier (remote / far) memory.
    Remote,
}

/// The result of scanning one batch's access bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanResult {
    /// Whether any page in the batch was accessed since the last scan.
    pub accessed: bool,
    /// Number of pages whose access bit was set (and therefore cleared,
    /// costing a TLB flush each).
    pub pages_set: u32,
    /// When the batch was last accessed (for cold detection).
    pub last_access: Option<Timestamp>,
}

#[derive(Debug, Clone)]
struct MemBatch {
    tier: Tier,
    accesses_since_scan: f64,
    carry: f64,
    last_access: Option<Timestamp>,
    total_accesses: f64,
}

impl MemBatch {
    fn new() -> Self {
        MemBatch {
            tier: Tier::Local,
            accesses_since_scan: 0.0,
            carry: 0.0,
            last_access: None,
            total_accesses: 0.0,
        }
    }
}

/// Which memory workload to simulate (paper §6.4 uses ObjectStore, SQL, and
/// SpecJBB, plus an intentionally difficult oscillating SpecJBB for Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryWorkloadKind {
    /// Key-value store: highly skewed accesses, stable hot set.
    ObjectStore,
    /// OLTP SQL server: moderately skewed accesses, slowly drifting hot set.
    Sql,
    /// SPECjbb-like Java server workload: flatter access distribution.
    SpecJbb,
    /// SpecJBB oscillating between 150 s of activity and 80 s of sleep, with
    /// the hot set shifting on every activation (Figure 8).
    OscillatingSpecJbb,
}

impl MemoryWorkloadKind {
    /// The three steady workloads of Figure 7.
    pub const FIG7: [MemoryWorkloadKind; 3] =
        [MemoryWorkloadKind::ObjectStore, MemoryWorkloadKind::Sql, MemoryWorkloadKind::SpecJbb];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryWorkloadKind::ObjectStore => "ObjectStore",
            MemoryWorkloadKind::Sql => "SQL",
            MemoryWorkloadKind::SpecJbb => "SpecJBB",
            MemoryWorkloadKind::OscillatingSpecJbb => "SpecJBB (oscillating)",
        }
    }

    fn zipf_skew(self) -> f64 {
        match self {
            MemoryWorkloadKind::ObjectStore => 1.2,
            MemoryWorkloadKind::Sql => 0.9,
            MemoryWorkloadKind::SpecJbb | MemoryWorkloadKind::OscillatingSpecJbb => 0.7,
        }
    }

    fn hot_set_shift_period(self) -> Option<SimDuration> {
        match self {
            MemoryWorkloadKind::ObjectStore => None,
            MemoryWorkloadKind::Sql => Some(SimDuration::from_secs(300)),
            MemoryWorkloadKind::SpecJbb => Some(SimDuration::from_secs(400)),
            // The oscillating workload shifts its hot set on every activation.
            MemoryWorkloadKind::OscillatingSpecJbb => None,
        }
    }

    fn activity_cycle(self) -> Option<(SimDuration, SimDuration)> {
        match self {
            MemoryWorkloadKind::OscillatingSpecJbb => {
                Some((SimDuration::from_secs(150), SimDuration::from_secs(80)))
            }
            _ => None,
        }
    }
}

/// Configuration for a [`MemoryNode`].
#[derive(Debug, Clone)]
pub struct MemoryNodeConfig {
    /// Number of 2 MB batches of memory managed by the agent.
    pub batches: usize,
    /// 4 KB pages per batch (512 in the paper).
    pub pages_per_batch: u32,
    /// Average memory accesses per second while the workload is active.
    pub accesses_per_sec: f64,
    /// Integration step.
    pub step: SimDuration,
    /// Probability that an access-bit scan fails with a driver error
    /// (fault injection for data validation).
    pub scan_failure_probability: f64,
    /// RNG seed.
    pub seed: u64,
    /// Window over which recent local/remote fractions are reported.
    pub recent_window: SimDuration,
}

impl Default for MemoryNodeConfig {
    fn default() -> Self {
        MemoryNodeConfig {
            batches: 256,
            pages_per_batch: 512,
            accesses_per_sec: 50_000.0,
            step: SimDuration::from_millis(100),
            scan_failure_probability: 0.0,
            seed: 7,
            recent_window: SimDuration::from_secs(30),
        }
    }
}

impl MemoryNodeConfig {
    /// Returns the config with its access-sampling RNG reseeded — the hook
    /// fleet recipes use to give every simulated server an independent
    /// random stream (per-node seed derivation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A per-second sample of the remote-access fraction, kept for time-series
/// figures (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteFractionSample {
    /// Timestamp of the end of the one-second bucket.
    pub at: Timestamp,
    /// Fraction of accesses in that second that hit the remote tier.
    pub remote_fraction: f64,
    /// Whether the workload was active during that second.
    pub active: bool,
}

/// The simulated two-tier memory node.
pub struct MemoryNode {
    config: MemoryNodeConfig,
    kind: MemoryWorkloadKind,
    batches: Vec<MemBatch>,
    zipf: Zipf,
    permutation: Vec<usize>,
    now: Timestamp,
    rng: rand::rngs::StdRng,
    /// Multiplier on the workload's access rate, driven by co-location
    /// couplings (faster cores issue more memory accesses per second).
    bandwidth_factor: f64,
    access_bit_resets: u64,
    scans: u64,
    migrations: u64,
    local_accesses: f64,
    remote_accesses: f64,
    window: std::collections::VecDeque<(Timestamp, f64, f64)>,
    second_local: f64,
    second_remote: f64,
    next_second: Timestamp,
    series: Vec<RemoteFractionSample>,
    next_shift: Option<Timestamp>,
    activation_index: u64,
}

impl std::fmt::Debug for MemoryNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryNode")
            .field("workload", &self.kind.name())
            .field("now", &self.now)
            .field("batches", &self.batches.len())
            .field("remote_batches", &self.remote_batch_count())
            .finish()
    }
}

impl MemoryNode {
    /// Creates a node running the given memory workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero batches/pages, zero
    /// step, or probabilities out of range).
    pub fn new(kind: MemoryWorkloadKind, config: MemoryNodeConfig) -> Self {
        assert!(config.batches > 0, "need at least one batch");
        assert!(config.pages_per_batch > 0, "need at least one page per batch");
        assert!(!config.step.is_zero(), "step must be non-zero");
        assert!(
            (0.0..=1.0).contains(&config.scan_failure_probability),
            "scan failure probability must be in [0, 1]"
        );
        let zipf = Zipf::new(config.batches, kind.zipf_skew());
        let mut rng = seeded_rng(config.seed);
        // Shuffle so a batch's index carries no information about its
        // popularity; only observation can reveal the hot set.
        let mut permutation: Vec<usize> = (0..config.batches).collect();
        for i in (1..permutation.len()).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        let next_shift = kind.hot_set_shift_period().map(|p| Timestamp::ZERO + p);
        MemoryNode {
            batches: vec![MemBatch::new(); config.batches],
            zipf,
            permutation,
            now: Timestamp::ZERO,
            rng,
            bandwidth_factor: 1.0,
            access_bit_resets: 0,
            scans: 0,
            migrations: 0,
            local_accesses: 0.0,
            remote_accesses: 0.0,
            window: std::collections::VecDeque::new(),
            second_local: 0.0,
            second_remote: 0.0,
            next_second: Timestamp::from_secs(1),
            series: Vec::new(),
            next_shift,
            activation_index: 0,
            kind,
            config,
        }
    }

    /// The workload being simulated.
    pub fn workload(&self) -> MemoryWorkloadKind {
        self.kind
    }

    /// Number of 2 MB batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Pages per batch.
    pub fn pages_per_batch(&self) -> u32 {
        self.config.pages_per_batch
    }

    /// Number of batches currently in the local (first) tier.
    pub fn local_batch_count(&self) -> usize {
        self.batches.iter().filter(|b| b.tier == Tier::Local).count()
    }

    /// Number of batches currently in the remote (second) tier.
    pub fn remote_batch_count(&self) -> usize {
        self.batches.iter().filter(|b| b.tier == Tier::Remote).count()
    }

    /// The tier a batch currently lives in.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range.
    pub fn tier(&self, batch: usize) -> Tier {
        self.batches[batch].tier
    }

    /// Whether the workload is currently in an active phase (always true for
    /// non-oscillating workloads).
    pub fn is_active(&self) -> bool {
        self.is_active_at(self.now)
    }

    fn is_active_at(&self, t: Timestamp) -> bool {
        match self.kind.activity_cycle() {
            None => true,
            Some((active, sleep)) => {
                let cycle = active + sleep;
                let phase = t.as_nanos() % cycle.as_nanos().max(1);
                phase < active.as_nanos()
            }
        }
    }

    /// Scans one batch's access bits, clearing them (each set bit cleared
    /// costs a TLB flush, which is what the agent tries to minimize).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SourceUnavailable`] with the configured
    /// probability, modeling the scanning driver failing to scan or reset
    /// access bits (paper §5.3, "Validating data").
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range.
    pub fn scan_batch(&mut self, batch: usize) -> Result<ScanResult, DataError> {
        self.scans += 1;
        if self.config.scan_failure_probability > 0.0
            && self.rng.gen::<f64>() < self.config.scan_failure_probability
        {
            return Err(DataError::SourceUnavailable("access-bit scan failed".into()));
        }
        let pages = self.config.pages_per_batch as f64;
        let b = &mut self.batches[batch];
        // Approximate distinct pages touched from the access count with the
        // standard occupancy formula.
        let touched = pages * (1.0 - (-b.accesses_since_scan / pages).exp());
        let pages_set = touched.round() as u32;
        let accessed = b.accesses_since_scan > 0.5;
        let result = ScanResult { accessed, pages_set, last_access: b.last_access };
        self.access_bit_resets += u64::from(pages_set);
        b.accesses_since_scan = 0.0;
        Ok(result)
    }

    /// Moves a batch to the remote tier.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range.
    pub fn migrate_to_remote(&mut self, batch: usize) {
        if self.batches[batch].tier != Tier::Remote {
            self.batches[batch].tier = Tier::Remote;
            self.migrations += 1;
        }
    }

    /// Moves a batch back to the local tier.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is out of range.
    pub fn migrate_to_local(&mut self, batch: usize) {
        if self.batches[batch].tier != Tier::Local {
            self.batches[batch].tier = Tier::Local;
            self.migrations += 1;
        }
    }

    /// Restores every batch to the local tier (clean-up). Stops after
    /// `limit` migrations if the first tier were size-constrained; `None`
    /// restores everything.
    pub fn restore_all_local(&mut self, limit: Option<usize>) {
        let mut moved = 0;
        for i in 0..self.batches.len() {
            if self.batches[i].tier == Tier::Remote {
                if let Some(l) = limit {
                    if moved >= l {
                        break;
                    }
                }
                self.migrate_to_local(i);
                moved += 1;
            }
        }
    }

    /// Total number of access-bit resets (TLB flushes) caused by scanning.
    pub fn access_bit_resets(&self) -> u64 {
        self.access_bit_resets
    }

    /// Total number of scan operations issued.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Total number of batch migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Cumulative number of accesses that hit the local tier.
    pub fn local_accesses(&self) -> f64 {
        self.local_accesses
    }

    /// Cumulative number of accesses that hit the remote tier.
    pub fn remote_accesses(&self) -> f64 {
        self.remote_accesses
    }

    /// Fraction of accesses over the recent window that hit the remote tier
    /// (the Actuator safeguard signal). Returns 0 when there were no recent
    /// accesses.
    pub fn recent_remote_fraction(&self) -> f64 {
        let mut local = 0.0;
        let mut remote = 0.0;
        for &(_, l, r) in &self.window {
            local += l;
            remote += r;
        }
        if local + remote == 0.0 {
            0.0
        } else {
            remote / (local + remote)
        }
    }

    /// Ranks batches by their total access count (hottest first), which
    /// experiments use as the oracle hot-set ordering.
    pub fn hottest_batches(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.batches.len()).collect();
        idx.sort_by(|&a, &b| {
            self.batches[b]
                .total_accesses
                .partial_cmp(&self.batches[a].total_accesses)
                .expect("no NaN access counts")
        });
        idx
    }

    /// The per-second remote-fraction time series recorded so far.
    pub fn remote_fraction_series(&self) -> &[RemoteFractionSample] {
        &self.series
    }

    /// Fraction of active seconds in which at least `slo_local` of accesses
    /// were local (the paper's SLO attainment metric; `slo_local` is 0.8 for
    /// an 80% local-access SLO).
    pub fn slo_attainment(&self, slo_local: f64) -> f64 {
        let active: Vec<&RemoteFractionSample> = self.series.iter().filter(|s| s.active).collect();
        if active.is_empty() {
            return 1.0;
        }
        let met = active.iter().filter(|s| 1.0 - s.remote_fraction >= slo_local - 1e-9).count();
        met as f64 / active.len() as f64
    }

    /// Sets the multiplier applied to the workload's access rate. Co-location
    /// couplings use this to model faster cores issuing more memory accesses
    /// per second (see `sol-node-sim`'s `multi_node` module); `1.0` is the
    /// uncoupled baseline.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_bandwidth_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bandwidth factor must be positive");
        self.bandwidth_factor = factor;
    }

    /// The current access-rate multiplier.
    pub fn bandwidth_factor(&self) -> f64 {
        self.bandwidth_factor
    }

    /// Sets the scan failure probability (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_scan_failure_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.config.scan_failure_probability = p;
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    fn shift_hot_set(&mut self) {
        // Rotate the popularity permutation by a quarter of the batches so a
        // different subset becomes hot.
        let n = self.permutation.len();
        self.permutation.rotate_right(n / 4);
    }

    fn step_once(&mut self, dt: SimDuration) {
        let now = self.now;
        let active = self.is_active_at(now);

        // Hot-set shifts: periodic for SQL/SpecJBB, on every activation for
        // the oscillating workload.
        if let Some(at) = self.next_shift {
            if now >= at {
                self.shift_hot_set();
                self.next_shift = self.kind.hot_set_shift_period().map(|p| at + p);
            }
        }
        if self.kind == MemoryWorkloadKind::OscillatingSpecJbb {
            if let Some((active_len, sleep_len)) = self.kind.activity_cycle() {
                let cycle = active_len + sleep_len;
                let index = now.as_nanos() / cycle.as_nanos().max(1);
                if index != self.activation_index {
                    self.activation_index = index;
                    self.shift_hot_set();
                }
            }
        }

        let rate = if active { self.config.accesses_per_sec * self.bandwidth_factor } else { 0.0 };
        let total = rate * dt.as_secs_f64();
        let mut step_local = 0.0;
        let mut step_remote = 0.0;
        if total > 0.0 {
            for rank in 0..self.batches.len() {
                let expected = total * self.zipf.probability(rank);
                let idx = self.permutation[rank];
                let b = &mut self.batches[idx];
                // Carry fractional accesses between steps so low-rate batches
                // are still touched occasionally (deterministically).
                b.carry += expected;
                let hits = b.carry.floor();
                b.carry -= hits;
                if hits > 0.0 {
                    b.accesses_since_scan += hits;
                    b.total_accesses += hits;
                    b.last_access = Some(now);
                    match b.tier {
                        Tier::Local => step_local += hits,
                        Tier::Remote => step_remote += hits,
                    }
                }
            }
        }
        self.local_accesses += step_local;
        self.remote_accesses += step_remote;

        // Recent-window bookkeeping.
        self.window.push_back((now, step_local, step_remote));
        let horizon = now.saturating_add(SimDuration::ZERO);
        while let Some(&(t, _, _)) = self.window.front() {
            if horizon.duration_since(t) > self.config.recent_window {
                self.window.pop_front();
            } else {
                break;
            }
        }

        // Per-second series for SLO attainment.
        self.second_local += step_local;
        self.second_remote += step_remote;
        let end = now + dt;
        if end >= self.next_second {
            let total = self.second_local + self.second_remote;
            let remote_fraction = if total > 0.0 { self.second_remote / total } else { 0.0 };
            self.series.push(RemoteFractionSample {
                at: self.next_second,
                remote_fraction,
                active: self.is_active_at(self.next_second),
            });
            self.second_local = 0.0;
            self.second_remote = 0.0;
            self.next_second += SimDuration::from_secs(1);
        }

        self.now = end;
    }
}

impl Environment for MemoryNode {
    fn advance_to(&mut self, now: Timestamp) {
        while self.now < now {
            let remaining = now.duration_since(self.now);
            let dt = remaining.min(self.config.step);
            self.step_once(dt);
        }
    }

    fn mem_bytes(&self) -> usize {
        MemoryFootprint::mem_bytes(self)
    }
}

impl MemoryFootprint for MemoryNode {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.batches.capacity() * std::mem::size_of::<MemBatch>()
            + self.permutation.capacity() * std::mem::size_of::<usize>()
            + self.window.capacity() * std::mem::size_of::<(Timestamp, f64, f64)>()
            + self.series.capacity() * std::mem::size_of::<RemoteFractionSample>()
            + (MemoryFootprint::mem_bytes(&self.zipf) - std::mem::size_of::<Zipf>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemoryNodeConfig {
        MemoryNodeConfig {
            batches: 64,
            pages_per_batch: 512,
            accesses_per_sec: 10_000.0,
            ..MemoryNodeConfig::default()
        }
    }

    #[test]
    fn accesses_are_skewed_towards_hot_batches() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::ObjectStore, small_config());
        node.advance_to(Timestamp::from_secs(30));
        let hottest = node.hottest_batches();
        let top = &node.batches[hottest[0]];
        let bottom = &node.batches[*hottest.last().unwrap()];
        assert!(top.total_accesses > 20.0 * bottom.total_accesses.max(1.0));
    }

    #[test]
    fn all_local_by_default_and_migration_changes_access_routing() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::ObjectStore, small_config());
        assert_eq!(node.local_batch_count(), 64);
        node.advance_to(Timestamp::from_secs(10));
        assert_eq!(node.remote_accesses(), 0.0);
        // Move the hottest batch remote: remote accesses start accumulating.
        let hottest = node.hottest_batches()[0];
        node.migrate_to_remote(hottest);
        node.advance_to(Timestamp::from_secs(20));
        assert!(node.remote_accesses() > 0.0);
        assert!(node.recent_remote_fraction() > 0.0);
        assert_eq!(node.remote_batch_count(), 1);
        node.restore_all_local(None);
        assert_eq!(node.remote_batch_count(), 0);
    }

    #[test]
    fn scanning_reports_and_clears_access_bits() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::ObjectStore, small_config());
        node.advance_to(Timestamp::from_secs(5));
        let hottest = node.hottest_batches()[0];
        let first = node.scan_batch(hottest).unwrap();
        assert!(first.accessed);
        assert!(first.pages_set > 0);
        assert!(node.access_bit_resets() >= u64::from(first.pages_set));
        // Immediately rescanning finds the bits cleared.
        let second = node.scan_batch(hottest).unwrap();
        assert!(!second.accessed);
        assert_eq!(second.pages_set, 0);
    }

    #[test]
    fn scan_failures_are_injected() {
        let mut config = small_config();
        config.scan_failure_probability = 1.0;
        let mut node = MemoryNode::new(MemoryWorkloadKind::Sql, config);
        node.advance_to(Timestamp::from_secs(1));
        assert!(node.scan_batch(0).is_err());
    }

    #[test]
    fn oscillating_workload_sleeps_and_shifts_hot_set() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::OscillatingSpecJbb, small_config());
        assert!(node.is_active());
        node.advance_to(Timestamp::from_secs(160));
        assert!(!node.is_active(), "should be sleeping at t=160s");
        let before = node.hottest_batches()[0];
        // Clear all access bits during the sleep phase so the next activation's
        // activity is measured in isolation.
        for i in 0..node.batch_count() {
            let _ = node.scan_batch(i);
        }
        node.advance_to(Timestamp::from_secs(400));
        // The second activation uses a shifted hot set, so the batch with the
        // most activity since the scan differs from the original hottest one.
        let recent_hot = (0..node.batch_count())
            .max_by(|&a, &b| {
                node.batches[a]
                    .accesses_since_scan
                    .partial_cmp(&node.batches[b].accesses_since_scan)
                    .unwrap()
            })
            .unwrap();
        assert_ne!(before, recent_hot, "hot set should shift across activations");
    }

    #[test]
    fn slo_attainment_reflects_remote_placement() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::ObjectStore, small_config());
        // Everything local: SLO is trivially met.
        node.advance_to(Timestamp::from_secs(20));
        assert!((node.slo_attainment(0.8) - 1.0).abs() < 1e-9);
        // Move the entire hot set remote: the SLO collapses.
        let hottest: Vec<usize> = node.hottest_batches().into_iter().take(16).collect();
        for b in hottest {
            node.migrate_to_remote(b);
        }
        node.advance_to(Timestamp::from_secs(60));
        assert!(node.slo_attainment(0.8) < 0.9);
        assert!(node.recent_remote_fraction() > 0.5);
    }

    #[test]
    fn series_marks_sleep_seconds_inactive() {
        let mut node = MemoryNode::new(MemoryWorkloadKind::OscillatingSpecJbb, small_config());
        node.advance_to(Timestamp::from_secs(200));
        let series = node.remote_fraction_series();
        assert!(series.iter().any(|s| s.active));
        assert!(series.iter().any(|s| !s.active));
    }
}
