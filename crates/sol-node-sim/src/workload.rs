//! CPU workload models for the overclocking experiments (paper §6.2).
//!
//! Three workloads drive Figures 1–5:
//!
//! * [`SyntheticBatch`] — a server that periodically receives a batch of
//!   compute-intensive requests, processes them as fast as possible, then
//!   idles until the next batch. It benefits from overclocking only during its
//!   processing phases.
//! * [`ObjectStore`] — a distributed key-value server running at high load
//!   that always benefits from overclocking; performance is P99 latency.
//! * [`DiskSpeed`] — a disk-bound workload whose throughput does not improve
//!   with CPU frequency.
//!
//! The models are *fluid*: each simulation step the workload declares a CPU
//! demand and a CPU-bound fraction, the node grants cores and a frequency, and
//! the workload converts the delivered compute into progress and latency
//! metrics. This reproduces the dynamics the agent learns from (phases, idle
//! periods, frequency sensitivity) without simulating individual instructions.

use serde::{Deserialize, Serialize};

use sol_core::time::{SimDuration, Timestamp};
use sol_ml::footprint::MemoryFootprint;
use sol_ml::online_stats::SlidingWindow;

/// The CPU demand a workload places on the node during one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDemand {
    /// Cores' worth of compute the workload wants right now.
    pub cores: f64,
    /// Fraction of busy cycles that are productive (not stalled on memory or
    /// IO). High for compute-bound phases, near zero for disk-bound ones.
    pub cpu_bound_fraction: f64,
}

/// A workload performance summary (higher `score` is better).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Workload name.
    pub workload: String,
    /// Primary scalar performance metric; higher is better.
    pub score: f64,
    /// What the score measures (for printing in experiment tables).
    pub metric: &'static str,
    /// P99 latency in milliseconds, when the workload is latency-sensitive.
    pub p99_latency_ms: Option<f64>,
}

/// A CPU workload running inside an opaque VM.
pub trait CpuWorkload: Send {
    /// Workload name (as printed in the paper's figures).
    fn name(&self) -> &'static str;

    /// The demand the workload places on the CPU at `now`.
    fn demand(&mut self, now: Timestamp) -> WorkloadDemand;

    /// Delivers compute to the workload: `granted_cores` cores ran at
    /// `freq_factor` (current frequency / nominal frequency) for `dt`.
    fn deliver(&mut self, now: Timestamp, dt: SimDuration, granted_cores: f64, freq_factor: f64);

    /// Performance achieved so far.
    fn performance(&self) -> PerfReport;

    /// Heap bytes retained by the workload's own buffers (its inline size is
    /// accounted by whoever boxes it). The default reports 0.
    fn mem_bytes(&self) -> usize {
        0
    }
}

/// Periodic compute-intensive batch workload (paper §6.2 "Synthetic").
///
/// Every `period` a batch of `batch_work` core-seconds (at nominal frequency)
/// arrives; the workload uses every core it can get until the batch is done,
/// then idles.
#[derive(Debug, Clone)]
pub struct SyntheticBatch {
    period: SimDuration,
    batch_work: f64,
    max_cores: f64,
    remaining: f64,
    batch_started: Option<Timestamp>,
    next_arrival: Timestamp,
    completions: Vec<SimDuration>,
    work_done: f64,
}

impl SyntheticBatch {
    /// Creates the workload used in the paper's experiments: a batch arrives
    /// every 100 s and takes roughly 40 s of all-core processing at the
    /// nominal frequency.
    pub fn paper_default(cores: usize) -> Self {
        Self::new(SimDuration::from_secs(100), 40.0 * cores as f64, cores as f64)
    }

    /// Creates a batch workload with an arbitrary period and batch size
    /// (`batch_work` is in core-seconds at nominal frequency).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, or `batch_work`/`max_cores` are not
    /// positive.
    pub fn new(period: SimDuration, batch_work: f64, max_cores: f64) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        assert!(batch_work > 0.0 && max_cores > 0.0, "work and cores must be positive");
        SyntheticBatch {
            period,
            batch_work,
            max_cores,
            remaining: 0.0,
            batch_started: None,
            next_arrival: Timestamp::ZERO,
            completions: Vec::new(),
            work_done: 0.0,
        }
    }

    /// Number of batches completed so far.
    pub fn batches_completed(&self) -> usize {
        self.completions.len()
    }

    /// Mean batch completion time, if any batch completed.
    pub fn mean_completion(&self) -> Option<SimDuration> {
        if self.completions.is_empty() {
            None
        } else {
            let total: u64 = self.completions.iter().map(|d| d.as_nanos()).sum();
            Some(SimDuration::from_nanos(total / self.completions.len() as u64))
        }
    }

    /// Whether the workload is currently in a processing phase.
    pub fn is_processing(&self) -> bool {
        self.remaining > 0.0
    }

    fn maybe_start_batch(&mut self, now: Timestamp) {
        while now >= self.next_arrival {
            if self.remaining <= 0.0 {
                self.remaining = self.batch_work;
                self.batch_started = Some(self.next_arrival);
            }
            // Arrivals are strictly periodic; if a batch is still running the
            // new arrival's work piles on top (back-to-back batches).
            self.next_arrival += self.period;
        }
    }
}

impl CpuWorkload for SyntheticBatch {
    fn name(&self) -> &'static str {
        "Synthetic"
    }

    fn demand(&mut self, now: Timestamp) -> WorkloadDemand {
        self.maybe_start_batch(now);
        if self.remaining > 0.0 {
            WorkloadDemand { cores: self.max_cores, cpu_bound_fraction: 0.92 }
        } else {
            WorkloadDemand { cores: 0.02 * self.max_cores, cpu_bound_fraction: 0.10 }
        }
    }

    fn deliver(&mut self, now: Timestamp, dt: SimDuration, granted_cores: f64, freq_factor: f64) {
        if self.remaining <= 0.0 {
            return;
        }
        // Compute-bound work scales with frequency.
        let rate = granted_cores * freq_factor;
        let done = rate * dt.as_secs_f64();
        self.work_done += done.min(self.remaining);
        self.remaining -= done;
        if self.remaining <= 0.0 {
            self.remaining = 0.0;
            if let Some(start) = self.batch_started.take() {
                let end = now + dt;
                self.completions.push(end.duration_since(start));
            }
        }
    }

    fn performance(&self) -> PerfReport {
        // Performance is the inverse of the mean time to complete a batch
        // (the paper reports total time for a fixed number of batches).
        let score = match self.mean_completion() {
            Some(d) if d.as_secs_f64() > 0.0 => 1.0 / d.as_secs_f64(),
            _ => 0.0,
        };
        PerfReport {
            workload: self.name().to_string(),
            score,
            metric: "1 / mean batch completion time (1/s)",
            p99_latency_ms: None,
        }
    }

    fn mem_bytes(&self) -> usize {
        self.completions.capacity() * std::mem::size_of::<SimDuration>()
    }
}

/// A distributed key-value store at high load (paper §6.2 "ObjectStore").
///
/// Always CPU-bound; request latency improves with frequency. Performance is
/// reported as P99 latency.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    cores: f64,
    load: f64,
    base_latency_ms: f64,
    latencies: SlidingWindow,
    latency_sum: f64,
    latency_count: u64,
    requests_served: f64,
}

impl ObjectStore {
    /// Creates an ObjectStore VM using `cores` cores at roughly 85 % load,
    /// with the default 4096-sample P99 latency window.
    pub fn new(cores: usize) -> Self {
        Self::with_window(cores, 4096)
    }

    /// Like [`new`](Self::new) with an explicit latency-window capacity. The
    /// window is the workload's only heap buffer; large fleet grids shrink
    /// it to cut per-node memory.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(cores: usize, window: usize) -> Self {
        ObjectStore {
            cores: cores as f64,
            load: 0.85,
            base_latency_ms: 2.0,
            latencies: SlidingWindow::new(window),
            latency_sum: 0.0,
            latency_count: 0,
            requests_served: 0.0,
        }
    }

    /// P99 request latency over the recent window, in milliseconds.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latencies.quantile(0.99)
    }

    /// Mean request latency over the whole run, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum / self.latency_count as f64
        }
    }
}

impl CpuWorkload for ObjectStore {
    fn name(&self) -> &'static str {
        "ObjectStore"
    }

    fn demand(&mut self, _now: Timestamp) -> WorkloadDemand {
        WorkloadDemand { cores: self.load * self.cores, cpu_bound_fraction: 0.95 }
    }

    fn deliver(&mut self, now: Timestamp, dt: SimDuration, granted_cores: f64, freq_factor: f64) {
        let wanted = self.load * self.cores;
        let supply = (granted_cores / wanted).min(1.0);
        // Service time shrinks with frequency; starvation inflates it.
        let speedup = freq_factor * supply.max(1e-3);
        // A mild queueing term keeps P99 above the mean and adds sensitivity
        // to sustained overload. Deterministic jitter stands in for request
        // size variation.
        let jitter = 1.0 + 0.3 * ((now.as_secs_f64() * 7.3).sin().abs());
        let latency = self.base_latency_ms * jitter / speedup;
        self.latencies.push(latency);
        self.latency_sum += latency;
        self.latency_count += 1;
        self.requests_served += 1000.0 * dt.as_secs_f64() * supply * freq_factor;
    }

    fn performance(&self) -> PerfReport {
        // The score is based on the mean latency so that the agent's
        // intentional exploration epochs (a few percent of the time at lower
        // frequencies) do not dominate the metric; the P99 over the recent
        // window is still reported alongside it.
        let mean = self.mean_latency_ms();
        PerfReport {
            workload: self.name().to_string(),
            score: if mean > 0.0 { 1.0 / mean } else { 0.0 },
            metric: "1 / mean latency (1/ms)",
            p99_latency_ms: Some(self.p99_latency_ms()),
        }
    }

    fn mem_bytes(&self) -> usize {
        self.latencies.mem_bytes() - std::mem::size_of::<SlidingWindow>()
    }
}

/// A disk-bound workload whose throughput is limited by the storage device,
/// not the CPU (paper §6.2 "DiskSpeed").
#[derive(Debug, Clone)]
pub struct DiskSpeed {
    cores: f64,
    disk_requests_per_sec: f64,
    served: f64,
    elapsed: SimDuration,
}

impl DiskSpeed {
    /// Creates a DiskSpeed VM with the given core count.
    pub fn new(cores: usize) -> Self {
        DiskSpeed {
            cores: cores as f64,
            disk_requests_per_sec: 5_000.0,
            served: 0.0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Throughput achieved so far in requests per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.served / secs
        } else {
            0.0
        }
    }
}

impl CpuWorkload for DiskSpeed {
    fn name(&self) -> &'static str {
        "DiskSpeed"
    }

    fn demand(&mut self, _now: Timestamp) -> WorkloadDemand {
        // A third of the cores shuffle buffers; almost all their cycles stall
        // on the disk.
        WorkloadDemand { cores: 0.3 * self.cores, cpu_bound_fraction: 0.06 }
    }

    fn deliver(&mut self, _now: Timestamp, dt: SimDuration, granted_cores: f64, _freq_factor: f64) {
        self.elapsed += dt;
        // The disk is the bottleneck: as long as a minimal amount of CPU is
        // available the device runs at its native rate.
        let cpu_ok = granted_cores >= 0.05 * self.cores;
        if cpu_ok {
            self.served += self.disk_requests_per_sec * dt.as_secs_f64();
        } else {
            self.served += self.disk_requests_per_sec * dt.as_secs_f64() * 0.5;
        }
    }

    fn performance(&self) -> PerfReport {
        PerfReport {
            workload: self.name().to_string(),
            score: self.throughput(),
            metric: "disk requests per second",
            p99_latency_ms: None,
        }
    }
}

/// Which of the paper's three overclocking workloads to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverclockWorkloadKind {
    /// Periodic compute batches ([`SyntheticBatch`]).
    Synthetic,
    /// Key-value store at high load ([`ObjectStore`]).
    ObjectStore,
    /// Disk-bound workload ([`DiskSpeed`]).
    DiskSpeed,
}

impl OverclockWorkloadKind {
    /// All three workloads, in the order Figure 1 lists them.
    pub const ALL: [OverclockWorkloadKind; 3] = [
        OverclockWorkloadKind::Synthetic,
        OverclockWorkloadKind::ObjectStore,
        OverclockWorkloadKind::DiskSpeed,
    ];

    /// Instantiates the workload on a node with `cores` cores.
    pub fn build(self, cores: usize) -> Box<dyn CpuWorkload> {
        match self {
            OverclockWorkloadKind::Synthetic => Box::new(SyntheticBatch::paper_default(cores)),
            OverclockWorkloadKind::ObjectStore => Box::new(ObjectStore::new(cores)),
            OverclockWorkloadKind::DiskSpeed => Box::new(DiskSpeed::new(cores)),
        }
    }

    /// Like [`build`](Self::build) with an explicit latency-window capacity
    /// for the workloads that keep one ([`ObjectStore`]); the others ignore
    /// it. `build` is `build_with_window(cores, 4096)`.
    pub fn build_with_window(self, cores: usize, window: usize) -> Box<dyn CpuWorkload> {
        match self {
            OverclockWorkloadKind::ObjectStore => Box::new(ObjectStore::with_window(cores, window)),
            other => other.build(cores),
        }
    }

    /// The workload's display name.
    pub fn name(self) -> &'static str {
        match self {
            OverclockWorkloadKind::Synthetic => "Synthetic",
            OverclockWorkloadKind::ObjectStore => "ObjectStore",
            OverclockWorkloadKind::DiskSpeed => "DiskSpeed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_workload(w: &mut dyn CpuWorkload, secs: u64, freq_factor: f64, cores: f64) {
        let dt = SimDuration::from_millis(10);
        let steps = secs * 100;
        for i in 0..steps {
            let now = Timestamp::from_millis(i * 10);
            let d = w.demand(now);
            let granted = d.cores.min(cores);
            w.deliver(now, dt, granted, freq_factor);
        }
    }

    #[test]
    fn synthetic_batch_alternates_processing_and_idle() {
        let mut w = SyntheticBatch::paper_default(8);
        // At nominal frequency a 320 core-second batch on 8 cores takes ~40 s.
        run_workload(&mut w, 100, 1.0, 8.0);
        assert_eq!(w.batches_completed(), 1);
        let completion = w.mean_completion().unwrap().as_secs_f64();
        assert!((completion - 40.0).abs() < 1.5, "completion {completion}");
        assert!(!w.is_processing(), "should be idle before the next arrival");
    }

    #[test]
    fn synthetic_batch_speeds_up_with_frequency() {
        let mut slow = SyntheticBatch::paper_default(8);
        let mut fast = SyntheticBatch::paper_default(8);
        run_workload(&mut slow, 300, 1.0, 8.0);
        run_workload(&mut fast, 300, 2.3 / 1.5, 8.0);
        assert!(fast.performance().score > slow.performance().score * 1.3);
    }

    #[test]
    fn object_store_latency_improves_with_frequency() {
        let mut slow = ObjectStore::new(8);
        let mut fast = ObjectStore::new(8);
        run_workload(&mut slow, 30, 1.0, 8.0);
        run_workload(&mut fast, 30, 2.3 / 1.5, 8.0);
        assert!(fast.p99_latency_ms() < slow.p99_latency_ms() * 0.8);
    }

    #[test]
    fn object_store_latency_degrades_when_starved() {
        let mut full = ObjectStore::new(8);
        let mut starved = ObjectStore::new(8);
        run_workload(&mut full, 30, 1.0, 8.0);
        run_workload(&mut starved, 30, 1.0, 2.0);
        assert!(starved.p99_latency_ms() > 2.0 * full.p99_latency_ms());
    }

    #[test]
    fn disk_speed_is_frequency_insensitive() {
        let mut slow = DiskSpeed::new(8);
        let mut fast = DiskSpeed::new(8);
        run_workload(&mut slow, 30, 1.0, 8.0);
        run_workload(&mut fast, 30, 2.3 / 1.5, 8.0);
        let ratio = fast.performance().score / slow.performance().score;
        assert!((ratio - 1.0).abs() < 0.01, "throughput should not change: {ratio}");
    }

    #[test]
    fn workload_kinds_build_expected_names() {
        for kind in OverclockWorkloadKind::ALL {
            let w = kind.build(4);
            assert_eq!(w.name(), kind.name());
        }
    }

    #[test]
    fn synthetic_demand_is_low_when_idle_high_when_processing() {
        let mut w = SyntheticBatch::new(SimDuration::from_secs(100), 80.0, 8.0);
        let busy = w.demand(Timestamp::ZERO);
        assert_eq!(busy.cores, 8.0);
        // Finish the batch quickly, then check idle demand.
        w.deliver(Timestamp::ZERO, SimDuration::from_secs(20), 8.0, 1.0);
        let idle = w.demand(Timestamp::from_secs(30));
        assert!(idle.cores < 1.0);
        assert!(idle.cpu_bound_fraction < 0.5);
    }
}
