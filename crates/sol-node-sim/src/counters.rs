//! Hypervisor-level CPU performance counters.
//!
//! The SmartOverclock agent cannot see inside opaque VMs; it reads aggregate
//! counters through the hypervisor — instructions retired, unhalted cycles,
//! stalled cycles, total cycles — and derives Instructions Per Second (IPS)
//! and the α factor used by its Actuator safeguard:
//! `α = (unhalted_cycles - stalled_cycles) / total_cycles` (paper §5.1).

use serde::{Deserialize, Serialize};

use sol_core::time::{SimDuration, Timestamp};

/// Cumulative CPU counters for a VM (monotonically increasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuCounters {
    /// Instructions retired.
    pub instructions: f64,
    /// Cycles during which at least the core was not halted (busy cycles).
    pub unhalted_cycles: f64,
    /// Busy cycles spent stalled (waiting on memory, IO, ...).
    pub stalled_cycles: f64,
    /// All cycles elapsed across the VM's cores (busy or idle).
    pub total_cycles: f64,
}

impl CpuCounters {
    /// Adds another counter block (used when accumulating per-step deltas).
    pub fn accumulate(&mut self, delta: &CpuCounters) {
        self.instructions += delta.instructions;
        self.unhalted_cycles += delta.unhalted_cycles;
        self.stalled_cycles += delta.stalled_cycles;
        self.total_cycles += delta.total_cycles;
    }

    /// Difference `self - earlier`, saturating at zero per field.
    pub fn delta_since(&self, earlier: &CpuCounters) -> CpuCounters {
        CpuCounters {
            instructions: (self.instructions - earlier.instructions).max(0.0),
            unhalted_cycles: (self.unhalted_cycles - earlier.unhalted_cycles).max(0.0),
            stalled_cycles: (self.stalled_cycles - earlier.stalled_cycles).max(0.0),
            total_cycles: (self.total_cycles - earlier.total_cycles).max(0.0),
        }
    }

    /// The α factor over this counter block: the fraction of all cycles that
    /// were busy and not stalled. Returns 0 when no cycles elapsed.
    pub fn alpha(&self) -> f64 {
        if self.total_cycles <= 0.0 {
            0.0
        } else {
            ((self.unhalted_cycles - self.stalled_cycles) / self.total_cycles).clamp(0.0, 1.0)
        }
    }
}

/// A timestamped counter reading, as returned to agents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// When the sample was taken.
    pub at: Timestamp,
    /// Interval the sample covers.
    pub interval: SimDuration,
    /// Average instructions per second over the interval.
    pub ips: f64,
    /// α over the interval.
    pub alpha: f64,
    /// Current core frequency in GHz.
    pub frequency_ghz: f64,
}

impl CounterSample {
    /// Builds a sample from a counter delta over `interval`.
    pub fn from_delta(
        at: Timestamp,
        interval: SimDuration,
        delta: &CpuCounters,
        frequency_ghz: f64,
    ) -> Self {
        let secs = interval.as_secs_f64();
        let ips = if secs > 0.0 { delta.instructions / secs } else { 0.0 };
        CounterSample { at, interval, ips, alpha: delta.alpha(), frequency_ghz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_ratio_of_productive_cycles() {
        let c = CpuCounters {
            instructions: 100.0,
            unhalted_cycles: 80.0,
            stalled_cycles: 20.0,
            total_cycles: 100.0,
        };
        assert!((c.alpha() - 0.6).abs() < 1e-12);
        assert_eq!(CpuCounters::default().alpha(), 0.0);
    }

    #[test]
    fn delta_and_accumulate_are_inverses() {
        let mut a = CpuCounters::default();
        let d1 = CpuCounters {
            instructions: 5.0,
            unhalted_cycles: 4.0,
            stalled_cycles: 1.0,
            total_cycles: 10.0,
        };
        a.accumulate(&d1);
        let snapshot = a;
        a.accumulate(&d1);
        let delta = a.delta_since(&snapshot);
        assert!((delta.instructions - 5.0).abs() < 1e-12);
        assert!((delta.total_cycles - 10.0).abs() < 1e-12);
    }

    #[test]
    fn counter_sample_derives_ips() {
        let delta = CpuCounters {
            instructions: 3e9,
            unhalted_cycles: 1e9,
            stalled_cycles: 0.0,
            total_cycles: 2e9,
        };
        let s = CounterSample::from_delta(
            Timestamp::from_secs(1),
            SimDuration::from_secs(2),
            &delta,
            1.9,
        );
        assert!((s.ips - 1.5e9).abs() < 1.0);
        assert!((s.alpha - 0.5).abs() < 1e-12);
        assert_eq!(s.frequency_ghz, 1.9);
    }

    #[test]
    fn alpha_clamps_to_unit_interval() {
        let c = CpuCounters {
            instructions: 0.0,
            unhalted_cycles: 200.0,
            stalled_cycles: 0.0,
            total_cycles: 100.0,
        };
        assert_eq!(c.alpha(), 1.0);
    }
}
