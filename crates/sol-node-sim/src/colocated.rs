//! A physical node hosting the substrates of several co-located agents.
//!
//! The paper's headline scenario (§4.2, §6) is multiple learning agents
//! sharing one server. [`ColocatedNode`] composes a [`CpuNode`] (the
//! SmartOverclock substrate) and a [`HarvestNode`] (the SmartHarvest
//! substrate) into one [`Environment`] that advances both in lockstep under
//! the runtime's virtual clock, so a
//! [`NodeRuntime`](sol_core::runtime::node::NodeRuntime) can drive both
//! agents against it.
//!
//! The two substrates are physically coupled: the overclocking agent sets the
//! node's core frequency, and faster cores complete the harvest-side primary
//! VM's work in fewer core-seconds, shrinking its core demand (and therefore
//! enlarging the harvestable pool). Disable the coupling with
//! [`frequency_coupling`](ColocatedNode::frequency_coupling) to simulate
//! per-VM frequency domains.

use sol_core::runtime::Environment;
use sol_core::time::Timestamp;

use crate::cpu_node::CpuNode;
use crate::harvest_node::HarvestNode;
use crate::shared::Shared;

/// One server hosting the CPU-overclocking and CPU-harvesting substrates.
///
/// # Examples
///
/// ```
/// use sol_core::runtime::Environment;
/// use sol_core::time::Timestamp;
/// use sol_node_sim::colocated::ColocatedNode;
/// use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
/// use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
/// use sol_node_sim::shared::Shared;
/// use sol_node_sim::workload::OverclockWorkloadKind;
///
/// let cpu = Shared::new(CpuNode::new(
///     OverclockWorkloadKind::ObjectStore.build(8),
///     CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
/// ));
/// let harvest =
///     Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
/// let mut node = ColocatedNode::new(cpu.clone(), harvest.clone());
/// node.advance_to(Timestamp::from_secs(5));
/// assert_eq!(cpu.lock().now(), Timestamp::from_secs(5));
/// assert_eq!(harvest.lock().now(), Timestamp::from_secs(5));
/// ```
#[derive(Debug)]
pub struct ColocatedNode {
    cpu: Shared<CpuNode>,
    harvest: Shared<HarvestNode>,
    couple_frequency: bool,
}

impl ColocatedNode {
    /// Composes the two substrates, with frequency coupling enabled.
    pub fn new(cpu: Shared<CpuNode>, harvest: Shared<HarvestNode>) -> Self {
        ColocatedNode { cpu, harvest, couple_frequency: true }
    }

    /// Enables or disables the frequency→demand coupling between the
    /// overclocked cores and the harvest-side primary VM.
    pub fn frequency_coupling(mut self, enable: bool) -> Self {
        self.couple_frequency = enable;
        self
    }

    /// Handle to the CPU/DVFS substrate.
    pub fn cpu(&self) -> &Shared<CpuNode> {
        &self.cpu
    }

    /// Handle to the harvesting substrate.
    pub fn harvest(&self) -> &Shared<HarvestNode> {
        &self.harvest
    }
}

impl Environment for ColocatedNode {
    fn advance_to(&mut self, now: Timestamp) {
        if self.couple_frequency {
            let factor = self.cpu.with(|n| n.frequency_ghz() / n.nominal_frequency_ghz());
            self.harvest.with(|h| h.set_core_speed_factor(factor));
        }
        self.cpu.with(|n| n.advance_to(now));
        self.harvest.with(|h| h.advance_to(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_node::CpuNodeConfig;
    use crate::harvest_node::{BurstyService, HarvestNodeConfig};
    use crate::workload::OverclockWorkloadKind;

    fn node() -> (ColocatedNode, Shared<CpuNode>, Shared<HarvestNode>) {
        let cpu = Shared::new(CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let harvest =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        (ColocatedNode::new(cpu.clone(), harvest.clone()), cpu, harvest)
    }

    #[test]
    fn advances_both_substrates_in_lockstep() {
        let (mut colo, cpu, harvest) = node();
        colo.advance_to(Timestamp::from_secs(3));
        assert_eq!(cpu.lock().now(), Timestamp::from_secs(3));
        assert_eq!(harvest.lock().now(), Timestamp::from_secs(3));
    }

    #[test]
    fn overclocking_propagates_to_primary_demand() {
        let (mut colo, cpu, harvest) = node();
        colo.advance_to(Timestamp::from_secs(1));
        assert_eq!(harvest.lock().core_speed_factor(), 1.0);
        cpu.lock().set_frequency_ghz(2.3);
        colo.advance_to(Timestamp::from_secs(2));
        let factor = harvest.lock().core_speed_factor();
        assert!((factor - 2.3 / 1.5).abs() < 1e-9, "factor {factor}");
    }

    #[test]
    fn coupling_can_be_disabled() {
        let (colo, cpu, harvest) = node();
        let mut colo = colo.frequency_coupling(false);
        cpu.lock().set_frequency_ghz(2.3);
        colo.advance_to(Timestamp::from_secs(1));
        assert_eq!(harvest.lock().core_speed_factor(), 1.0);
    }
}
