//! Co-location presets: SOL agent populations sharing one node.
//!
//! The paper's central claim (§4.2, §6) is that multiple SOL agents run
//! safely on the same server. This module packages ready-to-run node
//! assemblies on top of the typed
//! [`ScenarioBuilder`](sol_core::runtime::builder::ScenarioBuilder) API and
//! the composable [`MultiNode`] environment:
//!
//! * [`colocated_agents`] — the two CPU-side agents (SmartOverclock +
//!   SmartHarvest) on one node, the configuration evaluated throughout
//!   `sol-bench`'s interference table.
//! * [`three_agents`] — all three paper agents (SmartOverclock, SmartHarvest,
//!   SmartMemory) on one node, with both physical couplings
//!   (frequency→demand and frequency→memory-bandwidth).
//!
//! Each preset returns typed [`AgentHandle`]s, so experiments target
//! interventions ([`NodeRuntime::delay_model_at`]) and read per-agent reports
//! without any downcasting. For custom populations, compose
//! [`MultiNode::builder`] and the per-agent blueprints
//! ([`overclock_blueprint`], [`harvest_blueprint`], [`memory_blueprint`])
//! directly.

use sol_core::runtime::builder::{AgentHandle, ScenarioRecipe};
use sol_core::runtime::fleet::NodeSeed;
use sol_core::runtime::node::NodeRuntime;
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
use sol_node_sim::memory_node::{MemoryNode, MemoryNodeConfig, MemoryWorkloadKind};
use sol_node_sim::multi_node::{Coupling, MultiNode};
use sol_node_sim::shared::Shared;
use sol_node_sim::workload::OverclockWorkloadKind;

use crate::harvest::{harvest_blueprint, HarvestActuator, HarvestConfig, HarvestModel};
use crate::memory::{memory_blueprint, MemoryActuator, MemoryConfig, MemoryModel};
use crate::overclock::{overclock_blueprint, OverclockActuator, OverclockConfig, OverclockModel};

/// Sub-seed streams of a fleet [`NodeSeed`], one per random consumer on a
/// node. Fixed assignments keep recipes reproducible: adding a consumer means
/// adding a stream, never renumbering existing ones.
///
/// Convention (documented on [`NodeSeed::stream`]): the presets own stream
/// indices `0..=15`; custom recipes, controllers, and experiment drivers use
/// `16` and up. Fleet-level inputs such as an arrival trace are seeded from
/// the fleet master seed, not from per-node streams.
const STREAM_OVERCLOCK_LEARNER: u64 = 0;
const STREAM_CPU_NODE: u64 = 1;
const STREAM_MEMORY_LEARNER: u64 = 2;
const STREAM_MEMORY_NODE: u64 = 3;

/// The minimum fraction of active seconds that must meet the node's
/// configured local-access SLO (`MemoryConfig::local_access_slo`) for the
/// node to count as healthy; fleet recipes report a `memory_slo_violations`
/// metric of 1 for nodes below this attainment floor (the same floor the
/// `three_agents` example asserts).
pub const MEMORY_SLO_ATTAINMENT_FLOOR: f64 = 0.5;

/// Configuration for a co-located two-agent node.
#[derive(Debug, Clone)]
pub struct ColocationConfig {
    /// SmartOverclock agent configuration.
    pub overclock: OverclockConfig,
    /// SmartHarvest agent configuration.
    pub harvest: HarvestConfig,
    /// Workload hosted by the overclocked VM.
    pub workload: OverclockWorkloadKind,
    /// Latency-sensitive service hosted by the harvest-side primary VM.
    pub service: BurstyService,
    /// Cores visible to the overclocked VM.
    pub cores: usize,
    /// RNG seed of the CPU substrate's fault injector.
    pub cpu_seed: u64,
    /// Whether overclocking speeds up the harvest-side primary VM
    /// (shared frequency domain).
    pub couple_frequency: bool,
    /// Cores' worth of dynamically placeable VM slots on the CPU substrate
    /// (0 — the default — declines all fleet-level placement; see
    /// `CpuNodeConfig::placeable_cores`).
    pub placeable_cores: f64,
    /// Capacity of the node's latency sliding windows (the harvest
    /// substrate's request-latency window and the ObjectStore workload's
    /// operation-latency window). The default (4096 samples) matches the
    /// historical hardcoded size; large fleets shrink it to cut per-node
    /// memory (see `FleetReport::mem_bytes_per_node`). Quantile estimates
    /// get noisier below ~512 samples.
    pub latency_window: usize,
}

impl Default for ColocationConfig {
    fn default() -> Self {
        ColocationConfig {
            overclock: OverclockConfig::default(),
            harvest: HarvestConfig::default(),
            workload: OverclockWorkloadKind::ObjectStore,
            service: BurstyService::image_dnn(),
            cores: 8,
            cpu_seed: CpuNodeConfig::default().seed,
            couple_frequency: true,
            placeable_cores: 0.0,
            latency_window: 4_096,
        }
    }
}

impl ColocationConfig {
    /// Derives every random stream of this node from a fleet [`NodeSeed`]
    /// (see [`colocated_recipe`]): the SmartOverclock Q-learner and the CPU
    /// substrate's fault injector each get an independent sub-seed, so fleet
    /// nodes are heterogeneous but each node is fully deterministic.
    pub fn reseeded(mut self, seed: &NodeSeed) -> Self {
        self.overclock.seed = seed.stream(STREAM_OVERCLOCK_LEARNER);
        self.cpu_seed = seed.stream(STREAM_CPU_NODE);
        self
    }
}

/// A ready-to-run co-located node: the runtime plus the typed handles and
/// node handles needed to target interventions and read reports afterwards.
pub struct ColocatedAgents {
    /// The multi-agent runtime hosting both agents.
    pub runtime: NodeRuntime<MultiNode>,
    /// Typed handle to the SmartOverclock agent (registered first).
    pub overclock: AgentHandle<OverclockModel, OverclockActuator>,
    /// Typed handle to the SmartHarvest agent (registered second).
    pub harvest: AgentHandle<HarvestModel, HarvestActuator>,
    /// Handle to the CPU/DVFS substrate (also reachable via the report's
    /// environment).
    pub cpu: Shared<CpuNode>,
    /// Handle to the harvesting substrate.
    pub harvest_node: Shared<HarvestNode>,
}

/// Builds a [`NodeRuntime`] hosting SmartOverclock and SmartHarvest on one
/// shared node.
///
/// # Examples
///
/// ```
/// use sol_agents::colocation::{colocated_agents, ColocationConfig};
/// use sol_core::time::SimDuration;
///
/// let agents = colocated_agents(ColocationConfig::default());
/// let (overclock, harvest) = (agents.overclock, agents.harvest);
/// let report = agents.runtime.run_for(SimDuration::from_secs(5))?;
/// assert!(report.agent(overclock).stats().model.epochs_completed > 0);
/// assert!(report.agent(harvest).stats().model.epochs_completed > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn colocated_agents(config: ColocationConfig) -> ColocatedAgents {
    let cpu = Shared::new(CpuNode::new(
        config.workload.build_with_window(config.cores, config.latency_window),
        CpuNodeConfig { cores: config.cores, ..CpuNodeConfig::default() }
            .with_seed(config.cpu_seed)
            .with_placeable_cores(config.placeable_cores),
    ));
    let harvest_node = Shared::new(HarvestNode::new(
        config.service,
        HarvestNodeConfig { latency_window: config.latency_window, ..HarvestNodeConfig::default() },
    ));
    let mut node = MultiNode::builder().cpu(cpu.clone()).harvest(harvest_node.clone());
    if config.couple_frequency {
        node = node.coupling(Coupling::FrequencyToDemand);
    }
    let node = node.build().expect("both coupled substrates are registered");

    let mut builder = NodeRuntime::builder(node);
    let overclock = builder.register(overclock_blueprint(&cpu, config.overclock));
    let harvest = builder.register(harvest_blueprint(&harvest_node, config.harvest));

    ColocatedAgents { runtime: builder.build(), overclock, harvest, cpu, harvest_node }
}

/// Configuration for the full three-agent node of the paper's deployment
/// story.
#[derive(Debug, Clone)]
pub struct ThreeAgentConfig {
    /// SmartOverclock agent configuration.
    pub overclock: OverclockConfig,
    /// SmartHarvest agent configuration.
    pub harvest: HarvestConfig,
    /// SmartMemory agent configuration.
    pub memory: MemoryConfig,
    /// Workload hosted by the overclocked VM.
    pub workload: OverclockWorkloadKind,
    /// Latency-sensitive service hosted by the harvest-side primary VM.
    pub service: BurstyService,
    /// Memory workload whose pages SmartMemory manages.
    pub memory_workload: MemoryWorkloadKind,
    /// Two-tier memory substrate configuration.
    pub memory_node: MemoryNodeConfig,
    /// Cores visible to the overclocked VM.
    pub cores: usize,
    /// RNG seed of the CPU substrate's fault injector.
    pub cpu_seed: u64,
    /// Whether overclocking speeds up the harvest-side primary VM
    /// (shared frequency domain).
    pub couple_frequency: bool,
    /// Whether overclocking raises the memory workload's access rate
    /// (frequency→memory-bandwidth coupling).
    pub couple_memory_bandwidth: bool,
    /// Cores' worth of dynamically placeable VM slots on the CPU substrate
    /// (0 — the default — declines all fleet-level placement).
    pub placeable_cores: f64,
    /// Capacity of the node's latency sliding windows (see
    /// [`ColocationConfig::latency_window`]).
    pub latency_window: usize,
}

impl Default for ThreeAgentConfig {
    fn default() -> Self {
        ThreeAgentConfig {
            overclock: OverclockConfig::default(),
            harvest: HarvestConfig::default(),
            memory: MemoryConfig::default(),
            workload: OverclockWorkloadKind::ObjectStore,
            service: BurstyService::image_dnn(),
            memory_workload: MemoryWorkloadKind::ObjectStore,
            memory_node: MemoryNodeConfig {
                batches: 128,
                accesses_per_sec: 40_000.0,
                ..MemoryNodeConfig::default()
            },
            cores: 8,
            cpu_seed: CpuNodeConfig::default().seed,
            couple_frequency: true,
            couple_memory_bandwidth: true,
            placeable_cores: 0.0,
            latency_window: 4_096,
        }
    }
}

impl ThreeAgentConfig {
    /// Derives every random stream of this node from a fleet [`NodeSeed`]
    /// (see [`three_agents_recipe`]): the SmartOverclock Q-learner, the
    /// SmartMemory Thompson samplers, the CPU substrate's fault injector, and
    /// the memory substrate's access sampler each get an independent
    /// sub-seed, so fleet nodes are heterogeneous but each node is fully
    /// deterministic.
    pub fn reseeded(mut self, seed: &NodeSeed) -> Self {
        self.overclock.seed = seed.stream(STREAM_OVERCLOCK_LEARNER);
        self.cpu_seed = seed.stream(STREAM_CPU_NODE);
        self.memory.seed = seed.stream(STREAM_MEMORY_LEARNER);
        self.memory_node = self.memory_node.with_seed(seed.stream(STREAM_MEMORY_NODE));
        self
    }
}

/// A ready-to-run node hosting all three paper agents, with typed handles to
/// each.
pub struct ThreeAgents {
    /// The multi-agent runtime hosting all three agents.
    pub runtime: NodeRuntime<MultiNode>,
    /// Typed handle to the SmartOverclock agent (registered first).
    pub overclock: AgentHandle<OverclockModel, OverclockActuator>,
    /// Typed handle to the SmartHarvest agent (registered second).
    pub harvest: AgentHandle<HarvestModel, HarvestActuator>,
    /// Typed handle to the SmartMemory agent (registered third).
    pub memory: AgentHandle<MemoryModel, MemoryActuator>,
    /// Handle to the CPU/DVFS substrate.
    pub cpu: Shared<CpuNode>,
    /// Handle to the harvesting substrate.
    pub harvest_node: Shared<HarvestNode>,
    /// Handle to the two-tier memory substrate.
    pub memory_node: Shared<MemoryNode>,
}

/// Builds a [`NodeRuntime`] hosting all **three** paper agents —
/// SmartOverclock, SmartHarvest, and SmartMemory — on one [`MultiNode`] with
/// both physical couplings declared.
///
/// # Examples
///
/// ```
/// use sol_agents::colocation::{three_agents, ThreeAgentConfig};
/// use sol_core::time::SimDuration;
///
/// let agents = three_agents(ThreeAgentConfig::default());
/// let (oc, hv, mem) = (agents.overclock, agents.harvest, agents.memory);
/// let report = agents.runtime.run_for(SimDuration::from_secs(10))?;
/// // All three learners made progress on the shared node, read back through
/// // typed handles with no downcasts.
/// assert!(report.agent(oc).stats().model.epochs_completed > 0);
/// assert!(report.agent(hv).stats().model.epochs_completed > 0);
/// assert!(report.agent(mem).stats().model.samples_committed > 0);
/// assert_eq!(report.agent(mem).name(), "smart-memory");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn three_agents(config: ThreeAgentConfig) -> ThreeAgents {
    let cpu = Shared::new(CpuNode::new(
        config.workload.build_with_window(config.cores, config.latency_window),
        CpuNodeConfig { cores: config.cores, ..CpuNodeConfig::default() }
            .with_seed(config.cpu_seed)
            .with_placeable_cores(config.placeable_cores),
    ));
    let harvest_node = Shared::new(HarvestNode::new(
        config.service,
        HarvestNodeConfig { latency_window: config.latency_window, ..HarvestNodeConfig::default() },
    ));
    let memory_node = Shared::new(MemoryNode::new(config.memory_workload, config.memory_node));

    let mut node = MultiNode::builder()
        .cpu(cpu.clone())
        .harvest(harvest_node.clone())
        .memory(memory_node.clone());
    if config.couple_frequency {
        node = node.coupling(Coupling::FrequencyToDemand);
    }
    if config.couple_memory_bandwidth {
        node = node.coupling(Coupling::FrequencyToMemoryBandwidth);
    }
    let node = node.build().expect("all coupled substrates are registered");

    let mut builder = NodeRuntime::builder(node);
    let overclock = builder.register(overclock_blueprint(&cpu, config.overclock));
    let harvest = builder.register(harvest_blueprint(&harvest_node, config.harvest));
    let memory = builder.register(memory_blueprint(&memory_node, config.memory));

    ThreeAgents {
        runtime: builder.build(),
        overclock,
        harvest,
        memory,
        cpu,
        harvest_node,
        memory_node,
    }
}

/// A fleet-ready two-agent node recipe: the [`ScenarioRecipe`] plus the
/// handle set shared by every node it stamps out (each node replays the same
/// registration sequence, so the handles are valid fleet-wide — including
/// against [`FleetReport::role`](sol_core::runtime::fleet::FleetReport::role)).
pub struct ColocatedRecipe {
    /// The replayable node assembly; pass to
    /// [`FleetRuntime::new`](sol_core::runtime::fleet::FleetRuntime::new).
    pub recipe: ScenarioRecipe<MultiNode>,
    /// Handle to the SmartOverclock agent on every node.
    pub overclock: AgentHandle<OverclockModel, OverclockActuator>,
    /// Handle to the SmartHarvest agent on every node.
    pub harvest: AgentHandle<HarvestModel, HarvestActuator>,
}

/// Packages [`colocated_agents`] as a fleet recipe: every node is stamped out
/// from `base` with its learner and substrate RNGs reseeded per node
/// ([`ColocationConfig::reseeded`]). The recipe reports the CPU and harvest
/// substrate outcomes (`perf_score`, `avg_power_watts`, `p99_latency_ms`,
/// `harvested_core_seconds`) as fleet metrics.
pub fn colocated_recipe(base: ColocationConfig) -> ColocatedRecipe {
    // Handles are positional, so one probe assembly yields the handle set
    // shared by every node. Building (and discarding) a probe node keeps the
    // invariant that handles only ever come from a real registration; the
    // cost is one cheap construction per recipe, never per node.
    let probe = colocated_agents(base.clone());
    let recipe = ScenarioRecipe::new(move |seed: &NodeSeed| {
        colocated_agents(base.clone().reseeded(seed)).runtime
    })
    .with_telemetry(|env| {
        // Live barrier telemetry for fleet controllers: the safety signal a
        // harvest-aware packer watches (primary-VM tail latency) plus the
        // node's current power draw.
        let cpu = env.cpu().expect("recipe registers the CPU substrate");
        let harvest = env.harvest().expect("recipe registers the harvest substrate");
        vec![
            ("p99_latency_ms".into(), harvest.with(|n| n.p99_latency_ms())),
            ("avg_power_watts".into(), cpu.with(|n| n.average_power_watts())),
        ]
    })
    .with_metrics(|report| {
        let env = &report.environment;
        let cpu = env.cpu().expect("recipe registers the CPU substrate");
        let harvest = env.harvest().expect("recipe registers the harvest substrate");
        let (perf, power) = cpu.with(|n| (n.performance().score, n.average_power_watts()));
        let (p99, harvested) = harvest.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
        vec![
            ("perf_score".into(), perf),
            ("avg_power_watts".into(), power),
            ("p99_latency_ms".into(), p99),
            ("harvested_core_seconds".into(), harvested),
        ]
    });
    ColocatedRecipe { recipe, overclock: probe.overclock, harvest: probe.harvest }
}

/// A fleet-ready three-agent node recipe (see [`ColocatedRecipe`] for the
/// handle-sharing contract).
pub struct ThreeAgentsRecipe {
    /// The replayable node assembly; pass to
    /// [`FleetRuntime::new`](sol_core::runtime::fleet::FleetRuntime::new).
    pub recipe: ScenarioRecipe<MultiNode>,
    /// Handle to the SmartOverclock agent on every node.
    pub overclock: AgentHandle<OverclockModel, OverclockActuator>,
    /// Handle to the SmartHarvest agent on every node.
    pub harvest: AgentHandle<HarvestModel, HarvestActuator>,
    /// Handle to the SmartMemory agent on every node.
    pub memory: AgentHandle<MemoryModel, MemoryActuator>,
}

/// Packages [`three_agents`] as a fleet recipe: every node is stamped out
/// from `base` with its learner and substrate RNGs reseeded per node
/// ([`ThreeAgentConfig::reseeded`]). On top of the two-agent metrics the
/// recipe reports `memory_slo_attainment` (against the SLO the node's
/// SmartMemory agent is actually configured to enforce,
/// `base.memory.local_access_slo`), `memory_remote_batches`, and
/// `memory_slo_violations` (1 for nodes whose attainment fell below
/// [`MEMORY_SLO_ATTAINMENT_FLOOR`]), so a fleet run's dashboard directly
/// counts SLO-violating servers.
pub fn three_agents_recipe(base: ThreeAgentConfig) -> ThreeAgentsRecipe {
    // One probe assembly yields the fleet-wide handle set; see
    // `colocated_recipe` for the tradeoff.
    let probe = three_agents(base.clone());
    // Measure attainment against the SLO the agents enforce, not a constant:
    // a fleet configured for a 90%-local SLO must be judged at 90%.
    let slo_target = base.memory.local_access_slo;
    let recipe = ScenarioRecipe::new(move |seed: &NodeSeed| {
        three_agents(base.clone().reseeded(seed)).runtime
    })
    .with_telemetry(|env| {
        let cpu = env.cpu().expect("recipe registers the CPU substrate");
        let harvest = env.harvest().expect("recipe registers the harvest substrate");
        let memory = env.memory().expect("recipe registers the memory substrate");
        vec![
            ("p99_latency_ms".into(), harvest.with(|n| n.p99_latency_ms())),
            ("avg_power_watts".into(), cpu.with(|n| n.average_power_watts())),
            ("remote_fraction".into(), memory.with(|n| n.recent_remote_fraction())),
        ]
    })
    .with_metrics(move |report| {
        let env = &report.environment;
        let cpu = env.cpu().expect("recipe registers the CPU substrate");
        let harvest = env.harvest().expect("recipe registers the harvest substrate");
        let memory = env.memory().expect("recipe registers the memory substrate");
        let (perf, power) = cpu.with(|n| (n.performance().score, n.average_power_watts()));
        let (p99, harvested) = harvest.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
        let (slo, remote) = memory.with(|n| (n.slo_attainment(slo_target), n.remote_batch_count()));
        vec![
            ("perf_score".into(), perf),
            ("avg_power_watts".into(), power),
            ("p99_latency_ms".into(), p99),
            ("harvested_core_seconds".into(), harvested),
            ("memory_slo_attainment".into(), slo),
            ("memory_remote_batches".into(), remote as f64),
            (
                "memory_slo_violations".into(),
                if slo < MEMORY_SLO_ATTAINMENT_FLOOR { 1.0 } else { 0.0 },
            ),
        ]
    });
    ThreeAgentsRecipe {
        recipe,
        overclock: probe.overclock,
        harvest: probe.harvest,
        memory: probe.memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::time::{SimDuration, Timestamp};

    #[test]
    fn both_agents_make_progress_on_one_node() {
        let agents = colocated_agents(ColocationConfig::default());
        let (oc, hv) = (agents.overclock, agents.harvest);
        let report = agents.runtime.run_for(SimDuration::from_secs(30)).unwrap();
        assert!(report.agent(oc).stats().model.epochs_completed >= 25);
        assert!(report.agent(hv).stats().model.epochs_completed >= 500);
        assert_eq!(report.agent(oc).name(), "smart-overclock");
        assert_eq!(report.agent(hv).name(), "smart-harvest");
        // Both substrates reached the horizon under the shared clock.
        let env = &report.environment;
        assert_eq!(env.cpu().unwrap().lock().now(), Timestamp::from_secs(30));
        assert_eq!(env.harvest().unwrap().lock().now(), Timestamp::from_secs(30));
    }

    #[test]
    fn model_delay_targets_one_agent_without_disturbing_the_other() {
        // Coupling off: with separate frequency domains the only way the
        // delay could reach the harvest agent is through a runtime-level
        // targeting bug. (With coupling on, interference through the shared
        // frequency is expected physics — measured in sol-bench.)
        let run = |delay_overclock: bool| {
            let config = ColocationConfig { couple_frequency: false, ..Default::default() };
            let agents = colocated_agents(config);
            let (oc, hv) = (agents.overclock, agents.harvest);
            let mut runtime = agents.runtime;
            if delay_overclock {
                runtime.delay_model_at(oc, Timestamp::from_secs(5), SimDuration::from_secs(20));
            }
            let report = runtime.run_for(SimDuration::from_secs(30)).unwrap();
            (report.agent(oc).stats().clone(), report.agent(hv).stats().clone())
        };
        let (oc_delayed, hv_beside_delay) = run(true);
        let (oc_clean, hv_clean) = run(false);
        assert!(
            oc_delayed.model.epochs_completed < oc_clean.model.epochs_completed,
            "the delayed overclock model must lose epochs"
        );
        assert_eq!(
            hv_beside_delay.model.epochs_completed, hv_clean.model.epochs_completed,
            "the co-located harvest agent must be unaffected by the targeted delay"
        );
    }

    #[test]
    fn frequency_coupling_increases_harvested_core_seconds() {
        let run = |couple: bool| {
            let config = ColocationConfig { couple_frequency: couple, ..Default::default() };
            let agents = colocated_agents(config);
            agents.runtime.run_for(SimDuration::from_secs(60)).unwrap();
            agents.harvest_node.with(|h| h.harvested_core_seconds())
        };
        // With the coupling, overclocking the CPU-bound workload shrinks the
        // primary VM's demand, so there is at least as much to harvest.
        assert!(run(true) >= run(false) * 0.99);
    }

    #[test]
    fn three_agents_make_progress_on_one_node() {
        let agents = three_agents(ThreeAgentConfig::default());
        let (oc, hv, mem) = (agents.overclock, agents.harvest, agents.memory);
        let report = agents.runtime.run_for(SimDuration::from_secs(45)).unwrap();
        assert!(report.agent(oc).stats().model.epochs_completed >= 35);
        assert!(report.agent(hv).stats().model.epochs_completed >= 800);
        // SmartMemory epochs are 38.4 s long: one full epoch fits in 45 s.
        assert!(report.agent(mem).stats().model.epochs_completed >= 1);
        // All three substrates reached the horizon under the shared clock.
        for now in [
            agents.cpu.with(|n| n.now()),
            agents.harvest_node.with(|n| n.now()),
            agents.memory_node.with(|n| n.now()),
        ] {
            assert_eq!(now, Timestamp::from_secs(45));
        }
    }

    #[test]
    fn memory_bandwidth_coupling_scales_access_rate_with_overclocking() {
        let run = |couple: bool| {
            let config = ThreeAgentConfig {
                couple_memory_bandwidth: couple,
                // Keep frequency behaviour identical across both runs so the
                // only difference is whether it reaches the memory substrate.
                ..Default::default()
            };
            let agents = three_agents(config);
            agents.runtime.run_for(SimDuration::from_secs(20)).unwrap();
            agents.memory_node.with(|n| n.local_accesses() + n.remote_accesses())
        };
        // The ObjectStore CPU workload overclocks quickly, so the coupled
        // memory substrate sees at least as many accesses.
        assert!(run(true) >= run(false));
    }

    #[test]
    fn latency_window_knob_shrinks_the_node_footprint() {
        // Windows allocate lazily, so run long enough for both sizes to fill.
        let footprint = |window: usize| {
            let config = ColocationConfig { latency_window: window, ..Default::default() };
            let mut runtime = colocated_agents(config).runtime;
            runtime.run_until(Timestamp::from_secs(30));
            runtime.mem_bytes()
        };
        let full = footprint(4_096);
        let compact = footprint(512);
        assert!(
            compact < full,
            "512-sample windows ({compact} B) must undercut 4096-sample windows ({full} B)"
        );
        // The harvest-side latency window alone shrinks by 3584 samples.
        assert!(full - compact >= 3_584 * std::mem::size_of::<f64>());
    }

    #[test]
    fn reseeding_derives_independent_streams() {
        let seed = NodeSeed::derive(99, 5);
        let two = ColocationConfig::default().reseeded(&seed);
        let three = ThreeAgentConfig::default().reseeded(&seed);
        // The same stream assignments hold across both presets.
        assert_eq!(two.overclock.seed, three.overclock.seed);
        assert_eq!(two.cpu_seed, three.cpu_seed);
        // All streams of one node are distinct.
        let streams =
            [three.overclock.seed, three.cpu_seed, three.memory.seed, three.memory_node.seed];
        let unique: std::collections::HashSet<u64> = streams.iter().copied().collect();
        assert_eq!(unique.len(), streams.len());
        // A different node gets different streams.
        let other = ColocationConfig::default().reseeded(&NodeSeed::derive(99, 6));
        assert_ne!(two.overclock.seed, other.overclock.seed);
    }

    #[test]
    fn recipe_instantiations_are_deterministic_per_seed() {
        let run = |seed: &NodeSeed| {
            let preset = colocated_recipe(ColocationConfig::default());
            let report =
                preset.recipe.instantiate(seed).run_for(SimDuration::from_secs(30)).unwrap();
            let stats = format!(
                "{:#?}{:#?}",
                report.agent(preset.overclock).stats(),
                report.agent(preset.harvest).stats()
            );
            (stats, preset.recipe.extract_metrics(&report))
        };
        let seed = NodeSeed::derive(1, 2);
        assert_eq!(run(&seed), run(&seed));
        // Different node seeds diverge (different Q-learner exploration).
        assert_ne!(run(&seed), run(&NodeSeed::derive(1, 3)));
    }

    #[test]
    fn three_agent_recipe_reports_memory_metrics() {
        let preset = three_agents_recipe(ThreeAgentConfig::default());
        let seed = NodeSeed::derive(0, 0);
        let report = preset.recipe.instantiate(&seed).run_for(SimDuration::from_secs(45)).unwrap();
        let metrics = preset.recipe.extract_metrics(&report);
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "perf_score",
            "avg_power_watts",
            "p99_latency_ms",
            "harvested_core_seconds",
            "memory_slo_attainment",
            "memory_remote_batches",
            "memory_slo_violations",
        ] {
            assert!(names.contains(&expected), "missing metric {expected}");
        }
        // Handles from the preset read every agent without downcasts.
        assert!(report.agent(preset.overclock).stats().model.epochs_completed > 0);
        assert!(report.agent(preset.harvest).stats().model.epochs_completed > 0);
        assert!(report.agent(preset.memory).stats().model.samples_committed > 0);
    }

    #[test]
    fn targeted_delay_leaves_the_other_two_agents_untouched() {
        let run = |delay_memory: bool| {
            let config = ThreeAgentConfig {
                couple_frequency: false,
                couple_memory_bandwidth: false,
                ..Default::default()
            };
            let agents = three_agents(config);
            let mut runtime = agents.runtime;
            if delay_memory {
                runtime.delay_model_at(
                    agents.memory,
                    Timestamp::from_secs(5),
                    SimDuration::from_secs(20),
                );
            }
            let report = runtime.run_for(SimDuration::from_secs(30)).unwrap();
            (
                report.agent(agents.overclock).stats().clone(),
                report.agent(agents.harvest).stats().clone(),
                report.agent(agents.memory).stats().clone(),
            )
        };
        let (oc_d, hv_d, mem_d) = run(true);
        let (oc_c, hv_c, mem_c) = run(false);
        assert!(mem_d.model.samples_committed < mem_c.model.samples_committed);
        assert_eq!(oc_d, oc_c, "the overclock agent must be unaffected");
        assert_eq!(hv_d, hv_c, "the harvest agent must be unaffected");
    }
}
