//! Co-location: SmartOverclock and SmartHarvest sharing one node.
//!
//! The paper's central claim (§4.2, §6) is that multiple SOL agents run
//! safely on the same server. This module wires the two CPU-side agents onto
//! one [`ColocatedNode`] and registers both with a multi-agent
//! [`NodeRuntime`], so experiments can measure interference between agents
//! and target failure injection at either one
//! ([`NodeRuntime::delay_model_at`]) while the other keeps running.
//!
//! The substrates are physically coupled through the core frequency: when
//! SmartOverclock raises the frequency, the harvest-side primary VM's work
//! completes in fewer core-seconds, enlarging the harvestable pool (see
//! [`sol_node_sim::colocated`]).

use sol_core::runtime::node::{AgentId, NodeRuntime};
use sol_node_sim::colocated::ColocatedNode;
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
use sol_node_sim::shared::Shared;
use sol_node_sim::workload::OverclockWorkloadKind;

use crate::harvest::{harvest_schedule, smart_harvest, HarvestConfig};
use crate::overclock::{overclock_schedule, smart_overclock, OverclockConfig};

/// Configuration for a co-located two-agent node.
#[derive(Debug, Clone)]
pub struct ColocationConfig {
    /// SmartOverclock agent configuration.
    pub overclock: OverclockConfig,
    /// SmartHarvest agent configuration.
    pub harvest: HarvestConfig,
    /// Workload hosted by the overclocked VM.
    pub workload: OverclockWorkloadKind,
    /// Latency-sensitive service hosted by the harvest-side primary VM.
    pub service: BurstyService,
    /// Cores visible to the overclocked VM.
    pub cores: usize,
    /// Whether overclocking speeds up the harvest-side primary VM
    /// (shared frequency domain).
    pub couple_frequency: bool,
}

impl Default for ColocationConfig {
    fn default() -> Self {
        ColocationConfig {
            overclock: OverclockConfig::default(),
            harvest: HarvestConfig::default(),
            workload: OverclockWorkloadKind::ObjectStore,
            service: BurstyService::image_dnn(),
            cores: 8,
            couple_frequency: true,
        }
    }
}

/// A ready-to-run co-located node: the runtime plus the ids and node handles
/// needed to target interventions and read metrics afterwards.
pub struct ColocatedAgents {
    /// The multi-agent runtime hosting both agents.
    pub runtime: NodeRuntime<ColocatedNode>,
    /// Id of the SmartOverclock agent (registered first).
    pub overclock_id: AgentId,
    /// Id of the SmartHarvest agent (registered second).
    pub harvest_id: AgentId,
    /// Handle to the CPU/DVFS substrate (also reachable via the report's
    /// environment).
    pub cpu: Shared<CpuNode>,
    /// Handle to the harvesting substrate.
    pub harvest_node: Shared<HarvestNode>,
}

/// Builds a [`NodeRuntime`] hosting SmartOverclock and SmartHarvest on one
/// shared node.
///
/// # Examples
///
/// ```
/// use sol_agents::colocation::{colocated_agents, ColocationConfig};
/// use sol_core::time::SimDuration;
///
/// let agents = colocated_agents(ColocationConfig::default());
/// let (overclock_id, harvest_id) = (agents.overclock_id, agents.harvest_id);
/// let report = agents.runtime.run_for(SimDuration::from_secs(5))?;
/// assert!(report.agent(overclock_id).stats.model.epochs_completed > 0);
/// assert!(report.agent(harvest_id).stats.model.epochs_completed > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn colocated_agents(config: ColocationConfig) -> ColocatedAgents {
    let cpu = Shared::new(CpuNode::new(
        config.workload.build(config.cores),
        CpuNodeConfig { cores: config.cores, ..CpuNodeConfig::default() },
    ));
    let harvest_node = Shared::new(HarvestNode::new(config.service, HarvestNodeConfig::default()));
    let node = ColocatedNode::new(cpu.clone(), harvest_node.clone())
        .frequency_coupling(config.couple_frequency);

    let mut runtime = NodeRuntime::new(node);
    let (oc_model, oc_actuator) = smart_overclock(&cpu, config.overclock);
    let overclock_id =
        runtime.register_agent("smart-overclock", oc_model, oc_actuator, overclock_schedule());
    let (hv_model, hv_actuator) = smart_harvest(&harvest_node, config.harvest);
    let harvest_id =
        runtime.register_agent("smart-harvest", hv_model, hv_actuator, harvest_schedule());

    ColocatedAgents { runtime, overclock_id, harvest_id, cpu, harvest_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::time::{SimDuration, Timestamp};

    #[test]
    fn both_agents_make_progress_on_one_node() {
        let agents = colocated_agents(ColocationConfig::default());
        let (oc, hv) = (agents.overclock_id, agents.harvest_id);
        let report = agents.runtime.run_for(SimDuration::from_secs(30)).unwrap();
        assert!(report.agent(oc).stats.model.epochs_completed >= 25);
        assert!(report.agent(hv).stats.model.epochs_completed >= 500);
        assert_eq!(report.agent(oc).name, "smart-overclock");
        assert_eq!(report.agent(hv).name, "smart-harvest");
        // Both substrates reached the horizon under the shared clock.
        let env = &report.environment;
        assert_eq!(env.cpu().lock().now(), Timestamp::from_secs(30));
        assert_eq!(env.harvest().lock().now(), Timestamp::from_secs(30));
    }

    #[test]
    fn model_delay_targets_one_agent_without_disturbing_the_other() {
        // Coupling off: with separate frequency domains the only way the
        // delay could reach the harvest agent is through a runtime-level
        // targeting bug. (With coupling on, interference through the shared
        // frequency is expected physics — measured in sol-bench.)
        let run = |delay_overclock: bool| {
            let config = ColocationConfig { couple_frequency: false, ..Default::default() };
            let agents = colocated_agents(config);
            let (oc, hv) = (agents.overclock_id, agents.harvest_id);
            let mut runtime = agents.runtime;
            if delay_overclock {
                runtime.delay_model_at(oc, Timestamp::from_secs(5), SimDuration::from_secs(20));
            }
            let report = runtime.run_for(SimDuration::from_secs(30)).unwrap();
            (report.agent(oc).stats.clone(), report.agent(hv).stats.clone())
        };
        let (oc_delayed, hv_beside_delay) = run(true);
        let (oc_clean, hv_clean) = run(false);
        assert!(
            oc_delayed.model.epochs_completed < oc_clean.model.epochs_completed,
            "the delayed overclock model must lose epochs"
        );
        assert_eq!(
            hv_beside_delay.model.epochs_completed, hv_clean.model.epochs_completed,
            "the co-located harvest agent must be unaffected by the targeted delay"
        );
    }

    #[test]
    fn frequency_coupling_increases_harvested_core_seconds() {
        let run = |couple: bool| {
            let config = ColocationConfig { couple_frequency: couple, ..Default::default() };
            let agents = colocated_agents(config);
            agents.runtime.run_for(SimDuration::from_secs(60)).unwrap();
            agents.harvest_node.with(|h| h.harvested_core_seconds())
        };
        // With the coupling, overclocking the CPU-bound workload shrinks the
        // primary VM's demand, so there is at least as much to harvest.
        assert!(run(true) >= run(false) * 0.99);
    }
}
