//! SmartOverclock: a Q-learning CPU overclocking agent (paper §5.1).
//!
//! The agent monitors the average Instructions Per Second (IPS) counter of a
//! VM's cores and learns when overclocking pays off. At the end of every
//! one-second learning epoch it computes the RL state and reward from the
//! observed IPS and current frequency, updates its Q-learning policy, and
//! picks the frequency for the next epoch (90% exploitation, 10% exploration).
//!
//! Safeguards (paper §5.1):
//! * **Data validation** — IPS readings outside `[0, max_freq * max_IPC]` are
//!   discarded.
//! * **Model safeguard** — if the average reward advantage of overclocking
//!   over the nominal frequency (Δr) across the last 10 epochs falls below a
//!   threshold, predictions are intercepted and the nominal frequency is used.
//! * **Non-blocking Actuator** — if no fresh prediction arrives within 5
//!   seconds, cores return to the nominal frequency.
//! * **Actuator safeguard** — the P90 of α = (unhalted − stalled) / total
//!   cycles over the last 100 seconds must stay above a threshold; otherwise
//!   overclocking is disabled entirely until activity resumes.

use std::collections::VecDeque;

use sol_core::actuator::{Actuator, ActuatorAssessment};
use sol_core::error::DataError;
use sol_core::model::{Model, ModelAssessment};
use sol_core::prediction::Prediction;
use sol_core::schedule::Schedule;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::exchange::{ExchangeError, LearnedExchange, LearnedState};
use sol_ml::online_stats::SlidingWindow;
use sol_ml::qlearning::{QConfig, QLearner};
use sol_node_sim::counters::CounterSample;
use sol_node_sim::cpu_node::CpuNode;
use sol_node_sim::shared::Shared;

/// Number of α bins used to build the RL state.
const ALPHA_BINS: usize = 4;
/// Performance weight in the reward function.
const REWARD_PERF_WEIGHT: f64 = 10.0;
/// Power-premium weight in the reward function.
const REWARD_POWER_WEIGHT: f64 = 2.0;

/// Configuration for the SmartOverclock agent.
#[derive(Debug, Clone)]
pub struct OverclockConfig {
    /// Enable the data-validation safeguard (range checks on IPS).
    pub validate_data: bool,
    /// Enable the model safeguard (Δr interception).
    pub model_safeguard: bool,
    /// Enable the Actuator safeguard (α P90 check).
    pub actuator_safeguard: bool,
    /// Fault injection: the model is broken and always selects the highest
    /// frequency (paper §6.2 "Inaccurate model").
    pub broken_model: bool,
    /// ε-greedy exploration probability (0.1 in the paper).
    pub exploration: f64,
    /// Δr threshold below which the model safeguard trips.
    pub reward_delta_threshold: f64,
    /// Number of epochs over which Δr is averaged (10 in the paper).
    pub reward_delta_window: usize,
    /// α threshold for the Actuator safeguard.
    pub alpha_threshold: f64,
    /// Number of recent α observations considered by the Actuator safeguard
    /// (the paper uses the past 100 seconds with 1-second actions).
    pub alpha_window: usize,
    /// How long a prediction stays valid.
    pub prediction_validity: SimDuration,
    /// RNG seed for the Q-learner.
    pub seed: u64,
}

impl Default for OverclockConfig {
    fn default() -> Self {
        OverclockConfig {
            validate_data: true,
            model_safeguard: true,
            actuator_safeguard: true,
            broken_model: false,
            exploration: 0.1,
            reward_delta_threshold: -0.1,
            reward_delta_window: 10,
            alpha_threshold: 0.05,
            alpha_window: 100,
            prediction_validity: SimDuration::from_secs(2),
            seed: 17,
        }
    }
}

impl OverclockConfig {
    /// A configuration with every safeguard disabled (the "unchecked" baseline
    /// used by the failure-injection experiments).
    pub fn without_safeguards() -> Self {
        OverclockConfig {
            validate_data: false,
            model_safeguard: false,
            actuator_safeguard: false,
            ..OverclockConfig::default()
        }
    }
}

/// The frequency decision flowing from the Model to the Actuator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyDecision {
    /// The frequency the VM's cores should run at, in GHz.
    pub frequency_ghz: f64,
    /// Whether this was an exploration step (useful for diagnostics).
    pub exploration: bool,
}

/// The SmartOverclock learning model.
pub struct OverclockModel {
    node: Shared<CpuNode>,
    config: OverclockConfig,
    learner: QLearner,
    frequencies: Vec<f64>,
    nominal_ghz: f64,
    max_plausible_ips: f64,
    epoch_samples: Vec<CounterSample>,
    prev_state: Option<usize>,
    prev_action: Option<usize>,
    reward_deltas: VecDeque<f64>,
    epochs: u64,
}

impl std::fmt::Debug for OverclockModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverclockModel")
            .field("epochs", &self.epochs)
            .field("frequencies", &self.frequencies)
            .finish()
    }
}

impl OverclockModel {
    /// Creates the model for a node handle.
    pub fn new(node: Shared<CpuNode>, config: OverclockConfig) -> Self {
        let (frequencies, nominal_ghz, max_ips) = node.with(|n| {
            (
                n.available_frequencies_ghz().to_vec(),
                n.nominal_frequency_ghz(),
                n.max_plausible_ips(),
            )
        });
        let states = ALPHA_BINS * frequencies.len();
        let mut qconfig = QConfig::new(states, frequencies.len());
        qconfig.exploration = config.exploration;
        let learner = QLearner::with_seed(qconfig, config.seed);
        OverclockModel {
            node,
            config,
            learner,
            frequencies,
            nominal_ghz,
            max_plausible_ips: max_ips,
            epoch_samples: Vec::new(),
            prev_state: None,
            prev_action: None,
            reward_deltas: VecDeque::new(),
            epochs: 0,
        }
    }

    /// Number of learning epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Read access to the Q-learner (for diagnostics and tests).
    pub fn learner(&self) -> &QLearner {
        &self.learner
    }

    fn alpha_bin(alpha: f64) -> usize {
        if alpha < 0.1 {
            0
        } else if alpha < 0.3 {
            1
        } else if alpha < 0.6 {
            2
        } else {
            3
        }
    }

    fn freq_index(&self, ghz: f64) -> usize {
        self.frequencies.iter().position(|f| (f - ghz).abs() < 1e-9).unwrap_or(0)
    }

    fn state(&self, alpha: f64, freq_ghz: f64) -> usize {
        Self::alpha_bin(alpha) * self.frequencies.len() + self.freq_index(freq_ghz)
    }

    /// Reward of running the epoch at `freq_ghz` while observing `ips`.
    fn reward(&self, ips: f64, freq_ghz: f64) -> f64 {
        let perf = (ips / self.max_plausible_ips).clamp(0.0, 1.0) * REWARD_PERF_WEIGHT;
        let power_premium = (freq_ghz - self.nominal_ghz) / self.nominal_ghz * REWARD_POWER_WEIGHT;
        perf - power_premium
    }

    /// Δr: the advantage of the epoch's overclocking decision over staying at
    /// the nominal frequency, assuming IPS scales at most linearly with
    /// frequency (paper §5.1 "Assessing the model").
    fn reward_delta(&self, ips: f64, freq_ghz: f64) -> f64 {
        if freq_ghz <= self.nominal_ghz {
            return 0.0;
        }
        let observed = self.reward(ips, freq_ghz);
        let nominal_ips = ips * self.nominal_ghz / freq_ghz;
        let expected_nominal = self.reward(nominal_ips, self.nominal_ghz);
        observed - expected_nominal
    }

    fn highest_frequency(&self) -> f64 {
        self.frequencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

impl Model for OverclockModel {
    type Data = CounterSample;
    type Pred = FrequencyDecision;

    fn collect_data(&mut self, _now: Timestamp) -> Result<CounterSample, DataError> {
        self.node.with(|n| n.take_counter_sample())
    }

    fn validate_data(&self, sample: &CounterSample) -> bool {
        if !self.config.validate_data {
            return true;
        }
        sample.ips.is_finite()
            && sample.ips >= 0.0
            && sample.ips <= self.max_plausible_ips
            && (0.0..=1.0).contains(&sample.alpha)
    }

    fn commit_data(&mut self, _now: Timestamp, sample: CounterSample) {
        self.epoch_samples.push(sample);
    }

    fn update_model(&mut self, _now: Timestamp) {
        if self.epoch_samples.is_empty() {
            return;
        }
        let n = self.epoch_samples.len() as f64;
        let avg_ips = self.epoch_samples.iter().map(|s| s.ips).sum::<f64>() / n;
        let avg_alpha = self.epoch_samples.iter().map(|s| s.alpha).sum::<f64>() / n;
        let freq = self.epoch_samples.last().expect("non-empty").frequency_ghz;

        let state = self.state(avg_alpha, freq);
        let reward = self.reward(avg_ips, freq);
        if let (Some(ps), Some(pa)) = (self.prev_state, self.prev_action) {
            self.learner.update(ps, pa, reward, state);
        }
        self.prev_state = Some(state);

        // Track Δr for the model safeguard.
        self.reward_deltas.push_back(self.reward_delta(avg_ips, freq));
        while self.reward_deltas.len() > self.config.reward_delta_window {
            self.reward_deltas.pop_front();
        }

        self.epochs += 1;
        self.epoch_samples.clear();
    }

    fn predict(&mut self, now: Timestamp) -> Option<Prediction<FrequencyDecision>> {
        let state = self.prev_state?;
        let (action, exploration) = if self.config.broken_model {
            (self.freq_index(self.highest_frequency()), false)
        } else {
            let chosen = self.learner.choose_action(state);
            (chosen.action, chosen.kind == sol_ml::qlearning::ActionKind::Explore)
        };
        self.prev_action = Some(action);
        let decision = FrequencyDecision { frequency_ghz: self.frequencies[action], exploration };
        Some(Prediction::model(decision, now, now + self.config.prediction_validity))
    }

    fn default_predict(&self, now: Timestamp) -> Prediction<FrequencyDecision> {
        Prediction::fallback(
            FrequencyDecision { frequency_ghz: self.nominal_ghz, exploration: false },
            now,
            now + self.config.prediction_validity,
        )
    }

    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        if !self.config.model_safeguard || self.reward_deltas.is_empty() {
            return ModelAssessment::Healthy;
        }
        let avg: f64 = self.reward_deltas.iter().sum::<f64>() / self.reward_deltas.len() as f64;
        if avg < self.config.reward_delta_threshold {
            ModelAssessment::failing(format!(
                "average overclocking reward delta {avg:.3} below threshold"
            ))
        } else {
            ModelAssessment::Healthy
        }
    }

    fn export_learned(&self) -> Option<LearnedState> {
        Some(self.learner.export_learned())
    }

    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        self.learner.import_learned(state)
    }
}

/// The SmartOverclock actuator: applies frequency decisions and enforces the
/// α-based end-to-end safeguard.
pub struct OverclockActuator {
    node: Shared<CpuNode>,
    config: OverclockConfig,
    alpha_window: SlidingWindow,
}

impl std::fmt::Debug for OverclockActuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverclockActuator")
            .field("alpha_samples", &self.alpha_window.len())
            .finish()
    }
}

impl OverclockActuator {
    /// Creates the actuator for a node handle.
    pub fn new(node: Shared<CpuNode>, config: OverclockConfig) -> Self {
        let alpha_window = SlidingWindow::new(config.alpha_window.max(1));
        OverclockActuator { node, config, alpha_window }
    }

    /// P90 of the α observations currently in the safeguard window.
    pub fn alpha_p90(&self) -> f64 {
        self.alpha_window.quantile(0.9)
    }
}

impl Actuator for OverclockActuator {
    type Pred = FrequencyDecision;

    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<FrequencyDecision>>) {
        self.node.with(|n| match pred {
            Some(p) => n.set_frequency_ghz(p.value().frequency_ghz),
            // No fresh prediction: take the safe default action.
            None => n.restore_nominal_frequency(),
        });
    }

    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        // α is sampled here (once per safeguard interval) rather than in
        // `take_action` so the window keeps filling while the Actuator is
        // halted — that is what lets the safeguard re-enable the agent
        // quickly when activity resumes (Figure 5).
        self.alpha_window.push(self.node.with(|n| n.current_alpha()));
        if !self.config.actuator_safeguard || !self.alpha_window.is_full() {
            return ActuatorAssessment::Acceptable;
        }
        ActuatorAssessment::from_acceptable(self.alpha_p90() >= self.config.alpha_threshold)
    }

    fn mitigate(&mut self, _now: Timestamp) {
        self.node.with(|n| n.restore_nominal_frequency());
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.node.with(|n| n.restore_nominal_frequency());
    }
}

/// The schedule SmartOverclock runs with: 100 ms counter samples, 1-second
/// learning epochs, a 5-second maximum actuation delay, and a 1-second
/// Actuator safeguard interval (paper §5.1).
pub fn overclock_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(10)
        .data_collect_interval(SimDuration::from_millis(100))
        .max_epoch_time(SimDuration::from_millis(1500))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(5))
        .assess_actuator_interval(SimDuration::from_secs(1))
        .build()
        .expect("static schedule is valid")
}

/// The schedule for the *blocking* Actuator baseline of Figure 4: the
/// Actuator waits indefinitely for a prediction instead of falling back to the
/// nominal frequency after 5 seconds.
pub fn blocking_overclock_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(10)
        .data_collect_interval(SimDuration::from_millis(100))
        .max_epoch_time(SimDuration::from_millis(1500))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(100_000))
        .assess_actuator_interval(SimDuration::from_secs(1))
        .build()
        .expect("static schedule is valid")
}

/// Convenience constructor: builds the model/actuator pair for a shared node.
pub fn smart_overclock(
    node: &Shared<CpuNode>,
    config: OverclockConfig,
) -> (OverclockModel, OverclockActuator) {
    (
        OverclockModel::new(node.clone(), config.clone()),
        OverclockActuator::new(node.clone(), config),
    )
}

/// The SmartOverclock agent packaged for
/// [`ScenarioBuilder::register`](sol_core::runtime::builder::ScenarioBuilder::register):
/// name `"smart-overclock"`, the model/actuator pair for `node`, and the
/// paper's schedule.
pub fn overclock_blueprint(
    node: &Shared<CpuNode>,
    config: OverclockConfig,
) -> sol_core::runtime::builder::AgentBlueprint<OverclockModel, OverclockActuator> {
    let (model, actuator) = smart_overclock(node, config);
    sol_core::runtime::builder::AgentBlueprint::new(
        "smart-overclock",
        model,
        actuator,
        overclock_schedule(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::prelude::*;
    use sol_node_sim::cpu_node::CpuNodeConfig;
    use sol_node_sim::workload::OverclockWorkloadKind;

    fn shared_node(kind: OverclockWorkloadKind) -> Shared<CpuNode> {
        Shared::new(CpuNode::new(kind.build(8), CpuNodeConfig { cores: 8, ..Default::default() }))
    }

    fn run(
        kind: OverclockWorkloadKind,
        config: OverclockConfig,
        secs: u64,
    ) -> (Shared<CpuNode>, AgentStats) {
        let node = shared_node(kind);
        let (model, actuator) = smart_overclock(&node, config);
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(secs)).unwrap();
        (node, report.stats)
    }

    #[test]
    fn learns_to_overclock_cpu_bound_workload() {
        let (node, stats) =
            run(OverclockWorkloadKind::ObjectStore, OverclockConfig::default(), 300);
        assert!(stats.model.epochs_completed > 200);
        // The learned policy should outperform a static nominal run.
        let baseline = shared_node(OverclockWorkloadKind::ObjectStore);
        baseline.with(|n| n.advance_to(Timestamp::from_secs(300)));
        let agent_score = node.with(|n| n.performance().score);
        let baseline_score = baseline.with(|n| n.performance().score);
        assert!(
            agent_score > baseline_score * 1.2,
            "agent {agent_score} vs nominal {baseline_score}"
        );
    }

    #[test]
    fn avoids_overclocking_disk_bound_workload() {
        let (node, _) = run(OverclockWorkloadKind::DiskSpeed, OverclockConfig::default(), 300);
        let static_turbo = shared_node(OverclockWorkloadKind::DiskSpeed);
        static_turbo.with(|n| {
            n.set_frequency_ghz(2.3);
            n.advance_to(Timestamp::from_secs(300));
        });
        let agent_power = node.with(|n| n.average_power_watts());
        let turbo_power = static_turbo.with(|n| n.average_power_watts());
        assert!(
            agent_power < turbo_power * 0.9,
            "agent should use much less power than static overclock: {agent_power} vs {turbo_power}"
        );
    }

    #[test]
    fn data_validation_discards_out_of_range_ips() {
        let node = shared_node(OverclockWorkloadKind::Synthetic);
        node.with(|n| n.set_bad_ips_probability(0.3));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
        assert!(report.stats.model.samples_discarded > 50);
        assert!(report.stats.model.samples_committed > 0);
    }

    #[test]
    fn broken_model_is_intercepted_by_model_safeguard() {
        let config = OverclockConfig { broken_model: true, ..OverclockConfig::default() };
        let (_, stats) = run(OverclockWorkloadKind::DiskSpeed, config, 120);
        assert!(
            stats.model.intercepted_predictions > 0,
            "model safeguard should intercept the broken model"
        );
        assert!(stats.model.model_assessment_failures > 0);
    }

    #[test]
    fn broken_model_without_safeguard_is_not_intercepted() {
        let config =
            OverclockConfig { broken_model: true, ..OverclockConfig::without_safeguards() };
        let (_, stats) = run(OverclockWorkloadKind::DiskSpeed, config, 120);
        assert_eq!(stats.model.intercepted_predictions, 0);
    }

    #[test]
    fn actuator_safeguard_disables_overclocking_during_idle() {
        // A tiny batch followed by a very long idle phase.
        use sol_node_sim::workload::SyntheticBatch;
        let workload = SyntheticBatch::new(SimDuration::from_secs(10_000), 40.0, 8.0);
        let node = Shared::new(CpuNode::new(
            Box::new(workload),
            CpuNodeConfig { cores: 8, ..Default::default() },
        ));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(400)).unwrap();
        assert!(
            report.stats.actuator.safeguard_triggers >= 1,
            "idle workload should trip the alpha safeguard"
        );
        // Node ends at the nominal frequency.
        assert_eq!(node.with(|n| n.frequency_ghz()), 1.5);
    }

    #[test]
    fn cleanup_restores_nominal_frequency() {
        let node = shared_node(OverclockWorkloadKind::ObjectStore);
        let (_, mut actuator) = smart_overclock(&node, OverclockConfig::default());
        node.with(|n| n.set_frequency_ghz(2.3));
        actuator.clean_up(Timestamp::from_secs(1));
        assert_eq!(node.with(|n| n.frequency_ghz()), 1.5);
        // Idempotent.
        actuator.clean_up(Timestamp::from_secs(2));
        assert_eq!(node.with(|n| n.frequency_ghz()), 1.5);
    }
}
