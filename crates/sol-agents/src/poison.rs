//! Adversarial learners for exercising the fleet learning plane.
//!
//! The learning plane's robust aggregation rules
//! ([`AggregationRule`](sol_ml::exchange::AggregationRule)) exist because a
//! fleet cannot assume every node publishes honest learned state: a node with
//! corrupted telemetry, a buggy rollout, or a compromised agent ships whatever
//! its local learner converged to. This module provides the adversary half of
//! that story:
//!
//! * [`PoisonedLearner`] wraps any [`Model`] and corrupts **only** the state
//!   it exports to the fleet ([`Model::export_learned`]); the local control
//!   loop and the import path are untouched, so a poisoned node behaves
//!   normally except for what it tells its peers.
//! * [`PoisonAttack`] selects the corruption: [`PoisonAttack::SignFlip`]
//!   negates and amplifies every parameter (turning "learned to avoid X" into
//!   an emphatic "do X"), [`PoisonAttack::Noise`] adds seeded deterministic
//!   noise, [`PoisonAttack::Intermittent`] sign-flips only every k-th export
//!   (an on-off adversary probing detectors that forget), and
//!   [`PoisonAttack::Stealth`] applies a small multiplicative drift that
//!   stays inside the trimmed-aggregation bounds. [`PoisonAttack::Honest`]
//!   passes state through unchanged so clean and poisoned fleets stamp out
//!   structurally identical nodes.
//! * [`PoisonPlan`] picks distinct victim nodes as a pure function of a seed,
//!   mirroring [`FaultPlan::generate`](sol_core::runtime::lifecycle::FaultPlan::generate).
//! * [`poisoned_overclock_recipe`] packages the canonical demonstration: a
//!   fleet of SmartOverclock agents on disk-bound workloads (where honest
//!   learners learn *not* to overclock) with a seeded minority of sign-flip
//!   poisoners pushing the aggregate toward overclocking.
//!
//! Everything here is deterministic: the same seeds yield the same victims
//! and the same corrupted bytes, so fleet reports stay byte-identical across
//! worker-thread counts even under attack.

use std::cell::Cell;

use sol_core::error::DataError;
use sol_core::model::{Model, ModelAssessment};
use sol_core::prediction::Prediction;
use sol_core::runtime::builder::ScenarioRecipe;
use sol_core::runtime::fleet::NodeSeed;
use sol_core::runtime::node::NodeRuntime;
use sol_core::time::Timestamp;
use sol_ml::exchange::{ExchangeError, LearnedState};
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::shared::Shared;
use sol_node_sim::workload::OverclockWorkloadKind;

use crate::overclock::{overclock_schedule, smart_overclock, OverclockConfig};

// Local copy of the SplitMix64 step used throughout the workspace for seed
// derivation (the runtime's helper is crate-private to sol-core).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to the unit interval `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / 9_007_199_254_740_992.0
}

/// How a poisoned node corrupts the learned state it publishes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoisonAttack {
    /// No corruption: exports pass through unchanged. Using `Honest` for
    /// non-victims keeps clean and poisoned fleets structurally identical
    /// (every node hosts the same wrapper type), so comparisons isolate the
    /// attack itself.
    Honest,
    /// Negates and amplifies every parameter: `v ↦ -gain · v`. Against a
    /// value-shaped learner (Q-tables, linear weights) this inverts the
    /// learned preferences — the strongest "confidently wrong" adversary.
    SignFlip {
        /// Amplification factor (1.0 = pure negation).
        gain: f64,
    },
    /// Adds seeded deterministic noise: `v ↦ v + scale · u_i` where `u_i` is
    /// a per-index uniform draw from `[-1, 1)`. Models a corrupted-telemetry
    /// node rather than a deliberate adversary.
    Noise {
        /// Noise amplitude.
        scale: f64,
    },
    /// Pure negation (`v ↦ -v`), but only on every `every_k`-th export; the
    /// rest pass through honestly. An on-off adversary that probes detectors
    /// with short memories: each poisoned round is separated by enough honest
    /// ones that naive "last round looked fine" logic forgives it. The export
    /// counter lives on the wrapper, so the firing pattern is a pure function
    /// of how many exports the node has produced — deterministic across
    /// worker-thread counts.
    Intermittent {
        /// Firing period in exports: the k-th, 2k-th, … exports are
        /// corrupted. `0` is treated as `1` (every export fires).
        every_k: u64,
    },
    /// Scales every parameter by a small multiplicative `gain` close to 1.
    /// Unlike [`PoisonAttack::SignFlip`] this keeps each coordinate inside
    /// (or near) the honest spread, so trimmed aggregation does not discard
    /// it as an outlier — the attack relies on persistent low-magnitude drift
    /// rather than one large lie.
    Stealth {
        /// Multiplicative gain (1.0 = honest passthrough).
        gain: f64,
    },
}

impl PoisonAttack {
    /// Whether this attack actually corrupts exports.
    pub fn is_honest(&self) -> bool {
        matches!(self, PoisonAttack::Honest)
    }
}

/// A [`Model`] wrapper that corrupts the learned state the inner model
/// exports to the fleet, leaving every other behaviour — including imports —
/// untouched.
///
/// The wrapper is transparent to the control loop: predictions, safeguards,
/// and telemetry all come from the inner model. Only
/// [`Model::export_learned`] is intercepted, which is exactly the surface a
/// Byzantine node controls in a state-exchange protocol.
///
/// # Examples
///
/// ```
/// use sol_agents::poison::{PoisonAttack, PoisonedLearner};
/// use sol_agents::overclock::{smart_overclock, OverclockConfig};
/// use sol_core::model::Model;
/// use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
/// use sol_node_sim::shared::Shared;
/// use sol_node_sim::workload::OverclockWorkloadKind;
///
/// let node = Shared::new(CpuNode::new(
///     OverclockWorkloadKind::DiskSpeed.build(8),
///     CpuNodeConfig::default(),
/// ));
/// let (model, _actuator) = smart_overclock(&node, OverclockConfig::default());
/// let honest = model.export_learned().expect("Q-learner always exports");
///
/// let poisoned = PoisonedLearner::new(model, PoisonAttack::SignFlip { gain: 2.0 }, 7);
/// let corrupt = poisoned.export_learned().expect("corruption preserves shape");
/// assert_eq!(corrupt.shape(), honest.shape());
/// assert!(honest
///     .values()
///     .iter()
///     .zip(corrupt.values())
///     .all(|(h, c)| *c == -2.0 * *h));
/// ```
#[derive(Debug)]
pub struct PoisonedLearner<M> {
    inner: M,
    attack: PoisonAttack,
    salt: u64,
    /// Exports produced so far, driving [`PoisonAttack::Intermittent`]'s
    /// firing pattern. A `Cell` because [`Model::export_learned`] takes
    /// `&self`; exports happen at deterministic simulation points, so the
    /// count (and thus the pattern) is thread-schedule independent.
    exports: Cell<u64>,
}

impl<M> PoisonedLearner<M> {
    /// Wraps `inner`. `salt` seeds the [`PoisonAttack::Noise`] stream (it is
    /// unused by the other attacks but always kept, so switching attacks
    /// never changes a scenario's structure).
    pub fn new(inner: M, attack: PoisonAttack, salt: u64) -> Self {
        PoisonedLearner { inner, attack, salt, exports: Cell::new(0) }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The configured attack.
    pub fn attack(&self) -> PoisonAttack {
        self.attack
    }

    /// Unwraps the inner model.
    pub fn into_inner(self) -> M {
        self.inner
    }

    fn corrupt(&self, state: LearnedState) -> Option<LearnedState> {
        let values: Vec<f64> = match self.attack {
            PoisonAttack::Honest => return Some(state),
            PoisonAttack::SignFlip { gain } => state.values().iter().map(|v| -gain * v).collect(),
            PoisonAttack::Noise { scale } => {
                let root = splitmix64(self.salt);
                state
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let draw = splitmix64(root.wrapping_add((i as u64).wrapping_mul(GAMMA)));
                        v + scale * (2.0 * unit(draw) - 1.0)
                    })
                    .collect()
            }
            PoisonAttack::Intermittent { every_k } => {
                let produced = self.exports.get() + 1;
                self.exports.set(produced);
                if !produced.is_multiple_of(every_k.max(1)) {
                    return Some(state);
                }
                state.values().iter().map(|v| -v).collect()
            }
            PoisonAttack::Stealth { gain } => state.values().iter().map(|v| gain * v).collect(),
        };
        // An attack that overflows to a non-finite value would be rejected by
        // the aggregation layer anyway; dropping the export keeps the wrapper
        // panic-free for any inner state.
        LearnedState::new(state.kind(), state.shape().to_vec(), values).ok()
    }
}

impl<M: Model> Model for PoisonedLearner<M> {
    type Data = M::Data;
    type Pred = M::Pred;

    fn collect_data(&mut self, now: Timestamp) -> Result<Self::Data, DataError> {
        self.inner.collect_data(now)
    }

    fn validate_data(&self, data: &Self::Data) -> bool {
        self.inner.validate_data(data)
    }

    fn commit_data(&mut self, now: Timestamp, data: Self::Data) {
        self.inner.commit_data(now, data)
    }

    fn update_model(&mut self, now: Timestamp) {
        self.inner.update_model(now)
    }

    fn predict(&mut self, now: Timestamp) -> Option<Prediction<Self::Pred>> {
        self.inner.predict(now)
    }

    fn default_predict(&self, now: Timestamp) -> Prediction<Self::Pred> {
        self.inner.default_predict(now)
    }

    fn assess_model(&mut self, now: Timestamp) -> ModelAssessment {
        self.inner.assess_model(now)
    }

    fn request_default(&self) -> bool {
        self.inner.request_default()
    }

    /// Exports the inner model's state through the configured corruption.
    fn export_learned(&self) -> Option<LearnedState> {
        self.inner.export_learned().and_then(|state| self.corrupt(state))
    }

    /// Imports are delegated unchanged: a poisoning node lies to the fleet
    /// but still applies whatever aggregate comes back (which is what makes
    /// a successful attack visible in the attacker's own peers).
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        self.inner.import_learned(state)
    }
}

/// A seeded, deterministic choice of distinct poisoned nodes — the adversary
/// analogue of [`FaultPlan::generate`](sol_core::runtime::lifecycle::FaultPlan::generate).
///
/// The plan is a pure function of `(seed, nodes, victims)`, so a scenario's
/// victim set is reproducible and independent of worker-thread scheduling.
///
/// # Examples
///
/// ```
/// use sol_agents::poison::PoisonPlan;
///
/// let plan = PoisonPlan::generate(42, 8, 3);
/// assert_eq!(plan.victims().len(), 3);
/// assert_eq!(plan, PoisonPlan::generate(42, 8, 3));
/// assert_eq!((0..8).filter(|&n| plan.is_poisoned(n)).count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonPlan {
    victims: Vec<usize>,
}

impl PoisonPlan {
    /// A plan with no victims: every node is honest.
    pub fn empty() -> PoisonPlan {
        PoisonPlan { victims: Vec::new() }
    }

    /// Samples `victims` distinct nodes from `0..nodes` via a partial
    /// Fisher–Yates shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `victims > nodes`.
    pub fn generate(seed: u64, nodes: usize, victims: usize) -> PoisonPlan {
        assert!(
            victims <= nodes,
            "poison plan wants {victims} victims but the fleet has {nodes} nodes"
        );
        // Domain separation from NodeSeed::derive, the arrival trace, and the
        // fault plan.
        const POISON_DOMAIN: u64 = 0x4241_445f_4752_4144; // "BAD_GRAD"
        let root = splitmix64(seed ^ POISON_DOMAIN);
        let mut pool: Vec<usize> = (0..nodes).collect();
        for i in 0..victims {
            let draw = splitmix64(root.wrapping_add((i as u64).wrapping_mul(GAMMA)));
            let j = i + (draw as usize) % (nodes - i);
            pool.swap(i, j);
        }
        let mut chosen: Vec<usize> = pool[..victims].to_vec();
        chosen.sort_unstable();
        PoisonPlan { victims: chosen }
    }

    /// The poisoned node indices, sorted ascending.
    pub fn victims(&self) -> &[usize] {
        &self.victims
    }

    /// Whether `node` is a victim under this plan.
    pub fn is_poisoned(&self, node: usize) -> bool {
        self.victims.binary_search(&node).is_ok()
    }

    /// `attack` for victims, [`PoisonAttack::Honest`] for everyone else.
    pub fn attack_for(&self, node: usize, attack: PoisonAttack) -> PoisonAttack {
        if self.is_poisoned(node) {
            attack
        } else {
            PoisonAttack::Honest
        }
    }
}

// Seed streams for the poisoned-overclock recipe. Distinct from the
// colocation recipes' streams by convention (those use 0..=3).
const STREAM_LEARNER: u64 = 0;
const STREAM_CPU_NODE: u64 = 1;
const STREAM_POISON_SALT: u64 = 16;

/// Configuration for [`poisoned_overclock_recipe`].
#[derive(Debug, Clone)]
pub struct PoisonedOverclockConfig {
    /// SmartOverclock agent configuration (the per-node learner seed is
    /// derived from the fleet seed; the value here is ignored).
    pub overclock: OverclockConfig,
    /// Workload hosted on every node. The default,
    /// [`OverclockWorkloadKind::DiskSpeed`], is the scenario where honest
    /// learners converge on *not* overclocking — so a poisoner pushing the
    /// aggregate toward overclocking is maximally harmful.
    pub workload: OverclockWorkloadKind,
    /// Cores per node.
    pub cores: usize,
    /// Fleet size the victim plan is drawn over. Must match the
    /// `FleetConfig::nodes` the recipe is run with for the victim count to be
    /// exact (joined nodes beyond this range are always honest).
    pub nodes: usize,
    /// Number of poisoned nodes.
    pub victims: usize,
    /// Corruption applied on victim nodes.
    pub attack: PoisonAttack,
    /// Seed of the victim-selection plan (independent of the fleet seed so
    /// the same fleet can be re-run under different attacks).
    pub poison_seed: u64,
}

impl Default for PoisonedOverclockConfig {
    fn default() -> Self {
        PoisonedOverclockConfig {
            overclock: OverclockConfig::default(),
            workload: OverclockWorkloadKind::DiskSpeed,
            cores: 8,
            nodes: 8,
            victims: 0,
            attack: PoisonAttack::SignFlip { gain: 3.0 },
            poison_seed: 0xB105,
        }
    }
}

/// A fleet-ready poisoned-overclock scenario: the [`ScenarioRecipe`] plus the
/// victim plan it was stamped from (so dashboards and tests can tell victim
/// nodes from honest ones).
pub struct PoisonedOverclockRecipe {
    /// The replayable node assembly; pass to
    /// [`FleetRuntime::new`](sol_core::runtime::fleet::FleetRuntime::new).
    pub recipe: ScenarioRecipe<Shared<CpuNode>>,
    /// Which nodes corrupt their exports.
    pub plan: PoisonPlan,
}

/// A fleet recipe of single-agent SmartOverclock nodes on a disk-bound
/// workload, with a seeded minority of poisoners corrupting what they export
/// to the learning plane.
///
/// Honest nodes on [`OverclockWorkloadKind::DiskSpeed`] learn that
/// overclocking burns power for no speedup; a
/// [`PoisonAttack::SignFlip`] victim exports the *inverted* Q-table, telling
/// the fleet that overclocking is great. Under
/// [`AggregationRule::Mean`](sol_ml::exchange::AggregationRule::Mean) the
/// poison survives averaging and honest nodes start overclocking (visible as
/// model-safeguard interceptions and higher power draw); under
/// [`AggregationRule::CoordinateWiseMedian`](sol_ml::exchange::AggregationRule::CoordinateWiseMedian)
/// or trimmed mean the minority is voted down. The recipe reports
/// `perf_score` and `avg_power_watts` as fleet metrics.
pub fn poisoned_overclock_recipe(base: PoisonedOverclockConfig) -> PoisonedOverclockRecipe {
    let plan = PoisonPlan::generate(base.poison_seed, base.nodes, base.victims);
    let build_plan = plan.clone();
    let recipe = ScenarioRecipe::new(move |seed: &NodeSeed| {
        let node = Shared::new(CpuNode::new(
            base.workload.build(base.cores),
            CpuNodeConfig { cores: base.cores, ..CpuNodeConfig::default() }
                .with_seed(seed.stream(STREAM_CPU_NODE)),
        ));
        let mut config = base.overclock.clone();
        config.seed = seed.stream(STREAM_LEARNER);
        let (model, actuator) = smart_overclock(&node, config);
        let attack = build_plan.attack_for(seed.index() as usize, base.attack);
        let model = PoisonedLearner::new(model, attack, seed.stream(STREAM_POISON_SALT));
        let mut builder = NodeRuntime::builder(node.clone());
        builder.agent("smart-overclock", model, actuator, overclock_schedule());
        builder.build()
    })
    .with_metrics(|report| {
        let node = &report.environment;
        let (perf, power) = node.with(|n| (n.performance().score, n.average_power_watts()));
        vec![("perf_score".into(), perf), ("avg_power_watts".into(), power)]
    });
    PoisonedOverclockRecipe { recipe, plan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::model::Model;
    use sol_core::time::SimDuration;
    use sol_ml::exchange::{AggregationRule, StateKind};

    fn model() -> crate::overclock::OverclockModel {
        let node = Shared::new(CpuNode::new(
            OverclockWorkloadKind::DiskSpeed.build(8),
            CpuNodeConfig::default(),
        ));
        smart_overclock(&node, OverclockConfig::default()).0
    }

    /// A model whose only interesting behaviour is exporting a fixed
    /// [`LearnedState`] — lets attack tests pick distinctive values instead
    /// of relying on whatever a freshly seeded Q-learner happens to hold.
    struct FixedExport(LearnedState);

    impl Model for FixedExport {
        type Data = f64;
        type Pred = f64;

        fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
            Ok(0.0)
        }
        fn validate_data(&self, _sample: &f64) -> bool {
            true
        }
        fn commit_data(&mut self, _now: Timestamp, _sample: f64) {}
        fn update_model(&mut self, _now: Timestamp) {}
        fn predict(&mut self, _now: Timestamp) -> Option<Prediction<f64>> {
            None
        }
        fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
            Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
        }
        fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
            ModelAssessment::Healthy
        }
        fn export_learned(&self) -> Option<LearnedState> {
            Some(self.0.clone())
        }
    }

    fn fixed(values: Vec<f64>) -> FixedExport {
        let shape = vec![values.len()];
        FixedExport(LearnedState::new(StateKind::QTable, shape, values).unwrap())
    }

    #[test]
    fn honest_wrapper_is_transparent() {
        let inner = model();
        let honest = inner.export_learned().unwrap();
        let wrapped = PoisonedLearner::new(model(), PoisonAttack::Honest, 9);
        assert_eq!(wrapped.export_learned().unwrap(), honest);
        assert!(wrapped.attack().is_honest());
    }

    #[test]
    fn sign_flip_negates_and_amplifies() {
        let honest = model().export_learned().unwrap();
        let wrapped = PoisonedLearner::new(model(), PoisonAttack::SignFlip { gain: 3.0 }, 9);
        let corrupt = wrapped.export_learned().unwrap();
        assert_eq!(corrupt.kind(), honest.kind());
        assert_eq!(corrupt.shape(), honest.shape());
        assert!(honest.values().iter().zip(corrupt.values()).all(|(h, c)| *c == -3.0 * *h));
    }

    #[test]
    fn noise_is_deterministic_in_the_salt() {
        let a = PoisonedLearner::new(model(), PoisonAttack::Noise { scale: 0.5 }, 1234);
        let b = PoisonedLearner::new(model(), PoisonAttack::Noise { scale: 0.5 }, 1234);
        let c = PoisonedLearner::new(model(), PoisonAttack::Noise { scale: 0.5 }, 4321);
        assert_eq!(a.export_learned(), b.export_learned());
        assert_ne!(a.export_learned(), c.export_learned());
    }

    #[test]
    fn imports_pass_through_uncorrupted() {
        let honest = model().export_learned().unwrap();
        let mut wrapped = PoisonedLearner::new(model(), PoisonAttack::SignFlip { gain: 3.0 }, 9);
        wrapped.import_learned(&honest).unwrap();
        // The import landed verbatim: exporting again corrupts the *honest*
        // table, not a doubly-corrupted one.
        let roundtrip = wrapped.export_learned().unwrap();
        assert!(honest.values().iter().zip(roundtrip.values()).all(|(h, c)| *c == -3.0 * *h));
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        let plan = PoisonPlan::generate(7, 64, 16);
        assert_eq!(plan, PoisonPlan::generate(7, 64, 16));
        assert_ne!(plan, PoisonPlan::generate(8, 64, 16));
        assert_eq!(plan.victims().len(), 16);
        let mut sorted = plan.victims().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "victims are distinct");
        assert!(plan.victims().windows(2).all(|w| w[0] < w[1]), "victims are sorted");
        assert!(PoisonPlan::empty().victims().is_empty());
        assert_eq!(PoisonPlan::generate(7, 8, 8).victims().len(), 8);
    }

    #[test]
    fn attack_for_spares_non_victims() {
        let plan = PoisonPlan::generate(3, 8, 2);
        let attack = PoisonAttack::SignFlip { gain: 2.0 };
        for node in 0..8 {
            let assigned = plan.attack_for(node, attack);
            assert_eq!(assigned.is_honest(), !plan.is_poisoned(node));
        }
        // Joiners past the planned population are always honest.
        assert!(plan.attack_for(100, attack).is_honest());
    }

    #[test]
    fn intermittent_fires_on_every_kth_export() {
        let attack = PoisonAttack::Intermittent { every_k: 3 };
        assert!(!attack.is_honest());
        let honest = vec![1.0, -2.0, 0.5];
        let wrapped = PoisonedLearner::new(fixed(honest.clone()), attack, 9);
        for round in 1..=9u64 {
            let exported = wrapped.export_learned().unwrap();
            let expect: Vec<f64> =
                if round % 3 == 0 { honest.iter().map(|v| -v).collect() } else { honest.clone() };
            assert_eq!(exported.values(), &expect[..], "export #{round}");
        }
        // A zero period degrades to "every export fires" instead of a
        // division by zero.
        let always = PoisonedLearner::new(
            fixed(honest.clone()),
            PoisonAttack::Intermittent { every_k: 0 },
            9,
        );
        let exported = always.export_learned().unwrap();
        assert!(honest.iter().zip(exported.values()).all(|(h, c)| *c == -h));
    }

    #[test]
    fn stealth_scales_every_parameter() {
        let attack = PoisonAttack::Stealth { gain: 1.05 };
        assert!(!attack.is_honest());
        let honest = vec![1.0, -2.0, 0.5];
        let wrapped = PoisonedLearner::new(fixed(honest.clone()), attack, 9);
        let exported = wrapped.export_learned().unwrap();
        assert_eq!(exported.kind(), StateKind::QTable);
        assert!(honest.iter().zip(exported.values()).all(|(h, c)| *c == 1.05 * h));
        // The attack is stationary: every export carries the same drift.
        assert_eq!(wrapped.export_learned(), wrapped.export_learned());
    }

    /// Regression: with a strict honest majority, coordinate-wise median
    /// aggregation contains both new attack modes — the aggregate stays
    /// inside the honest spread on every coordinate, in both an intermittent
    /// poisoner's firing round and under persistent stealth drift.
    #[test]
    fn median_contains_intermittent_and_stealth_minorities() {
        let honest: Vec<Vec<f64>> =
            (0..5).map(|i| vec![1.0 + 0.01 * i as f64, -2.0 - 0.01 * i as f64]).collect();
        // `every_k: 1` pins the intermittent attacker to its worst case
        // (firing this round); stealth drifts persistently either way.
        let attackers =
            [PoisonAttack::Intermittent { every_k: 1 }, PoisonAttack::Stealth { gain: 1.5 }];
        let mut exports: Vec<LearnedState> =
            honest.iter().map(|v| fixed(v.clone()).export_learned().unwrap()).collect();
        for (i, attack) in attackers.into_iter().enumerate() {
            let wrapped = PoisonedLearner::new(fixed(honest[i].clone()), attack, 9);
            exports.push(wrapped.export_learned().unwrap());
        }
        for rule in [AggregationRule::CoordinateWiseMedian, AggregationRule::TrimmedMean { k: 2 }] {
            let aggregate = rule.aggregate(&exports).unwrap();
            for (coord, agg) in aggregate.values().iter().enumerate() {
                let column: Vec<f64> = honest.iter().map(|v| v[coord]).collect();
                let lo = column.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert!(
                    (lo..=hi).contains(agg),
                    "{rule:?} coordinate {coord}: aggregate {agg} escaped honest [{lo}, {hi}]"
                );
            }
        }
    }
}
