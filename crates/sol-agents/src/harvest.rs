//! SmartHarvest: a CPU-harvesting agent (paper §5.2, originally from
//! EuroSys'21 \[37\]).
//!
//! The agent opportunistically "harvests" CPU cores that were allocated to a
//! primary VM but are currently idle, loaning them to an ElasticVM and
//! returning them as soon as the primary needs them. It samples the primary
//! VM's CPU usage through the hypervisor, computes distributional features
//! over each 25 ms learning epoch, and uses a cost-sensitive classifier to
//! predict the maximum number of cores the primary will need next epoch.
//!
//! Safeguards (paper §5.2):
//! * **Data validation** — samples taken while the primary VM uses all its
//!   allocated cores are discarded (true demand is unobservable then), plus
//!   range checks.
//! * **Model safeguard** — the fraction of time model predictions leave the
//!   primary VM with no idle core is tracked; when it grows too high, default
//!   (conservative) predictions are used instead.
//! * **Non-blocking Actuator** — if no fresh prediction arrives within 100 ms,
//!   every core is returned to the primary VM.
//! * **Actuator safeguard** — the P99 of the primary VM's vCPU wait time must
//!   stay under a threshold; otherwise harvesting is disabled.

use std::collections::VecDeque;

use sol_core::actuator::{Actuator, ActuatorAssessment};
use sol_core::error::DataError;
use sol_core::model::{Model, ModelAssessment};
use sol_core::prediction::Prediction;
use sol_core::schedule::Schedule;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
use sol_ml::exchange::{ExchangeError, LearnedExchange, LearnedState};
use sol_ml::features::DistributionalFeatures;
use sol_node_sim::harvest_node::{HarvestNode, UsageSample};
use sol_node_sim::shared::Shared;

/// Configuration for the SmartHarvest agent.
#[derive(Debug, Clone)]
pub struct HarvestConfig {
    /// Enable the data-validation safeguard (discard saturated samples).
    pub validate_data: bool,
    /// Enable the model safeguard (starvation-fraction check).
    pub model_safeguard: bool,
    /// Enable the Actuator safeguard (P99 vCPU wait check).
    pub actuator_safeguard: bool,
    /// Fault injection: the model is broken and always predicts the minimum
    /// core demand (consistent under-prediction, paper §6.3).
    pub broken_model: bool,
    /// Extra cores added on top of the predicted demand as a safety buffer.
    pub safety_buffer_cores: usize,
    /// Cost of under-predicting demand by one core (relative to 1.0 for
    /// over-predicting by one core).
    pub under_prediction_penalty: f64,
    /// Classifier learning rate.
    pub learning_rate: f64,
    /// Fraction of model-driven epochs that may leave the primary VM without
    /// an idle core before the model safeguard trips.
    pub starvation_fraction_threshold: f64,
    /// Number of epochs over which the starvation fraction is computed.
    pub starvation_window: usize,
    /// P99 vCPU wait-time threshold (milliseconds) for the Actuator safeguard.
    pub wait_p99_threshold_ms: f64,
    /// How long a prediction stays valid.
    pub prediction_validity: SimDuration,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig {
            validate_data: true,
            model_safeguard: true,
            actuator_safeguard: true,
            broken_model: false,
            safety_buffer_cores: 2,
            under_prediction_penalty: 8.0,
            learning_rate: 0.05,
            starvation_fraction_threshold: 0.1,
            starvation_window: 40,
            wait_p99_threshold_ms: 0.2,
            prediction_validity: SimDuration::from_millis(100),
        }
    }
}

impl HarvestConfig {
    /// A configuration with every safeguard disabled.
    pub fn without_safeguards() -> Self {
        HarvestConfig {
            validate_data: false,
            model_safeguard: false,
            actuator_safeguard: false,
            ..HarvestConfig::default()
        }
    }
}

/// The core-demand prediction flowing from the Model to the Actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDemandPrediction {
    /// Number of cores the primary VM is predicted to need next epoch
    /// (including the safety buffer).
    pub cores_needed: usize,
}

/// The SmartHarvest learning model.
pub struct HarvestModel {
    node: Shared<HarvestNode>,
    config: HarvestConfig,
    classifier: CostSensitiveClassifier,
    total_cores: usize,
    epoch_usage: Vec<f64>,
    epoch_saw_saturation_while_harvesting: bool,
    prev_features: Option<Vec<f64>>,
    recent_max_usage: VecDeque<f64>,
    starvation_history: VecDeque<bool>,
    epochs: u64,
}

impl std::fmt::Debug for HarvestModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarvestModel").field("epochs", &self.epochs).finish()
    }
}

impl HarvestModel {
    /// Creates the model for a node handle.
    pub fn new(node: Shared<HarvestNode>, config: HarvestConfig) -> Self {
        let total_cores = node.with(|n| n.total_cores());
        let classifier = CostSensitiveClassifier::new(
            DistributionalFeatures::LEN,
            total_cores + 1,
            config.learning_rate,
        );
        HarvestModel {
            node,
            config,
            classifier,
            total_cores,
            epoch_usage: Vec::new(),
            epoch_saw_saturation_while_harvesting: false,
            prev_features: None,
            recent_max_usage: VecDeque::new(),
            starvation_history: VecDeque::new(),
            epochs: 0,
        }
    }

    /// Number of learning epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Fraction of recent epochs in which model-driven harvesting left the
    /// primary VM without idle cores (the model safeguard signal).
    pub fn starvation_fraction(&self) -> f64 {
        if self.starvation_history.is_empty() {
            return 0.0;
        }
        let bad = self.starvation_history.iter().filter(|&&b| b).count();
        bad as f64 / self.starvation_history.len() as f64
    }

    fn conservative_estimate(&self) -> usize {
        // The default prediction keeps every core with the primary VM: zero
        // impact on customer QoS at the cost of harvesting nothing while the
        // model cannot be trusted (paper §4.1: default predictions favour
        // safety over efficiency). It also restores visibility into the
        // primary VM's true demand, which is what lets the model recover.
        self.total_cores
    }
}

impl Model for HarvestModel {
    type Data = UsageSample;
    type Pred = CoreDemandPrediction;

    fn collect_data(&mut self, _now: Timestamp) -> Result<UsageSample, DataError> {
        let sample = self.node.with(|n| n.sample_primary_usage());
        // The model safeguard signal (did harvesting leave the primary VM
        // without idle cores?) is tracked at collection time, before
        // validation: saturated samples are exactly the ones validation will
        // discard, yet they are the evidence the safeguard needs.
        if sample.is_saturated() && sample.allocated_cores < self.total_cores as f64 {
            self.epoch_saw_saturation_while_harvesting = true;
        }
        Ok(sample)
    }

    fn validate_data(&self, sample: &UsageSample) -> bool {
        if !self.config.validate_data {
            return true;
        }
        let in_range = sample.used_cores.is_finite()
            && sample.used_cores >= 0.0
            && sample.used_cores <= self.total_cores as f64 + 1e-9;
        // During periods of full utilization it is impossible to tell whether
        // the VM needed exactly its allocation or more; learning from those
        // samples biases the model towards under-prediction (paper §5.2).
        in_range && !sample.is_saturated()
    }

    fn commit_data(&mut self, _now: Timestamp, sample: UsageSample) {
        self.epoch_usage.push(sample.used_cores);
    }

    fn update_model(&mut self, _now: Timestamp) {
        if self.epoch_usage.is_empty() {
            return;
        }
        let max_usage = self.epoch_usage.iter().cloned().fold(0.0f64, f64::max);
        let truth = (max_usage.ceil() as usize).min(self.total_cores);

        // Train on the previous epoch's features with this epoch's demand as
        // the label (predict-the-next-epoch formulation).
        if let Some(prev) = self.prev_features.take() {
            let example = CostSensitiveExample::from_ordinal_truth(
                prev,
                truth,
                self.total_cores + 1,
                self.config.under_prediction_penalty,
                1.0,
            );
            self.classifier.update(&example);
        }
        self.prev_features =
            Some(DistributionalFeatures::extract(&self.epoch_usage).values().to_vec());

        self.recent_max_usage.push_back(max_usage);
        while self.recent_max_usage.len() > 8 {
            self.recent_max_usage.pop_front();
        }
        self.starvation_history.push_back(self.epoch_saw_saturation_while_harvesting);
        while self.starvation_history.len() > self.config.starvation_window {
            self.starvation_history.pop_front();
        }

        self.epoch_usage.clear();
        self.epoch_saw_saturation_while_harvesting = false;
        self.epochs += 1;
    }

    fn predict(&mut self, now: Timestamp) -> Option<Prediction<CoreDemandPrediction>> {
        let features = self.prev_features.clone()?;
        let cores = if self.config.broken_model { 0 } else { self.classifier.predict(&features) };
        let cores_needed = (cores + self.config.safety_buffer_cores).min(self.total_cores).max(1);
        Some(Prediction::model(
            CoreDemandPrediction { cores_needed },
            now,
            now + self.config.prediction_validity,
        ))
    }

    fn default_predict(&self, now: Timestamp) -> Prediction<CoreDemandPrediction> {
        Prediction::fallback(
            CoreDemandPrediction { cores_needed: self.conservative_estimate() },
            now,
            now + self.config.prediction_validity,
        )
    }

    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        if !self.config.model_safeguard
            || self.starvation_history.len() < self.config.starvation_window / 2
        {
            return ModelAssessment::Healthy;
        }
        let fraction = self.starvation_fraction();
        if fraction > self.config.starvation_fraction_threshold {
            ModelAssessment::failing(format!(
                "primary VM ran out of idle cores in {:.0}% of recent epochs",
                fraction * 100.0
            ))
        } else {
            ModelAssessment::Healthy
        }
    }

    fn export_learned(&self) -> Option<LearnedState> {
        Some(self.classifier.export_learned())
    }

    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        self.classifier.import_learned(state)
    }
}

/// The SmartHarvest actuator: assigns cores between the primary VM and the
/// ElasticVM and enforces the vCPU-wait safeguard.
pub struct HarvestActuator {
    node: Shared<HarvestNode>,
    config: HarvestConfig,
}

impl std::fmt::Debug for HarvestActuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarvestActuator").finish_non_exhaustive()
    }
}

impl HarvestActuator {
    /// Creates the actuator for a node handle.
    pub fn new(node: Shared<HarvestNode>, config: HarvestConfig) -> Self {
        HarvestActuator { node, config }
    }
}

impl Actuator for HarvestActuator {
    type Pred = CoreDemandPrediction;

    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<CoreDemandPrediction>>) {
        self.node.with(|n| match pred {
            Some(p) => n.set_primary_cores(p.value().cores_needed),
            // No fresh prediction: return every core to the primary VM.
            None => n.return_all_cores(),
        });
    }

    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        if !self.config.actuator_safeguard {
            return ActuatorAssessment::Acceptable;
        }
        let p99_wait = self.node.with(|n| n.p99_wait_ms());
        ActuatorAssessment::from_acceptable(p99_wait <= self.config.wait_p99_threshold_ms)
    }

    fn mitigate(&mut self, _now: Timestamp) {
        self.node.with(|n| n.return_all_cores());
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.node.with(|n| n.return_all_cores());
    }
}

/// The schedule SmartHarvest runs with. The paper samples CPU usage every
/// 50 µs and takes a harvesting decision every 25 ms; the simulator samples
/// every 1 ms (25 samples per 25 ms epoch), which preserves the control-loop
/// structure at ~20× lower simulation cost. The Actuator waits at most 100 ms
/// (4 learning epochs) for a prediction, as in the paper.
pub fn harvest_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(25)
        .data_collect_interval(SimDuration::from_millis(1))
        .max_epoch_time(SimDuration::from_millis(40))
        .min_data_per_epoch(10)
        .assess_model_every_epochs(4)
        .max_actuation_delay(SimDuration::from_millis(100))
        .assess_actuator_interval(SimDuration::from_millis(250))
        .build()
        .expect("static schedule is valid")
}

/// The schedule for the *blocking* Actuator baseline (Figure 6, right): the
/// Actuator waits indefinitely for a prediction instead of returning cores
/// after 100 ms.
pub fn blocking_harvest_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(25)
        .data_collect_interval(SimDuration::from_millis(1))
        .max_epoch_time(SimDuration::from_millis(40))
        .min_data_per_epoch(10)
        .assess_model_every_epochs(4)
        .max_actuation_delay(SimDuration::from_secs(100_000))
        .assess_actuator_interval(SimDuration::from_millis(250))
        .build()
        .expect("static schedule is valid")
}

/// Convenience constructor: builds the model/actuator pair for a shared node.
pub fn smart_harvest(
    node: &Shared<HarvestNode>,
    config: HarvestConfig,
) -> (HarvestModel, HarvestActuator) {
    (HarvestModel::new(node.clone(), config.clone()), HarvestActuator::new(node.clone(), config))
}

/// The SmartHarvest agent packaged for
/// [`ScenarioBuilder::register`](sol_core::runtime::builder::ScenarioBuilder::register):
/// name `"smart-harvest"`, the model/actuator pair for `node`, and the
/// paper's schedule.
pub fn harvest_blueprint(
    node: &Shared<HarvestNode>,
    config: HarvestConfig,
) -> sol_core::runtime::builder::AgentBlueprint<HarvestModel, HarvestActuator> {
    let (model, actuator) = smart_harvest(node, config);
    sol_core::runtime::builder::AgentBlueprint::new(
        "smart-harvest",
        model,
        actuator,
        harvest_schedule(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::prelude::*;
    use sol_node_sim::harvest_node::{BurstyService, HarvestNodeConfig};

    fn shared_node(service: BurstyService) -> Shared<HarvestNode> {
        Shared::new(HarvestNode::new(service, HarvestNodeConfig::default()))
    }

    fn run(
        service: BurstyService,
        config: HarvestConfig,
        schedule: Schedule,
        secs: u64,
    ) -> (Shared<HarvestNode>, AgentStats) {
        let node = shared_node(service);
        let (model, actuator) = smart_harvest(&node, config);
        let runtime = SimRuntime::new(model, actuator, schedule, node.clone());
        let report = runtime.run_for(SimDuration::from_secs(secs)).unwrap();
        (node, report.stats)
    }

    #[test]
    fn harvests_cores_with_small_latency_impact() {
        let service = BurstyService::image_dnn();
        let base_latency = service.base_latency_ms;
        let (node, stats) = run(service, HarvestConfig::default(), harvest_schedule(), 60);
        let harvested = node.with(|n| n.harvested_core_seconds());
        let p99 = node.with(|n| n.p99_latency_ms());
        assert!(stats.model.epochs_completed > 500);
        assert!(harvested > 30.0, "should harvest idle capacity, got {harvested} core-seconds");
        assert!(
            p99 < 4.0 * base_latency,
            "P99 latency {p99} should stay close to the baseline {base_latency}"
        );
    }

    #[test]
    fn broken_model_is_caught_by_model_safeguard() {
        let config = HarvestConfig { broken_model: true, ..HarvestConfig::default() };
        let (_, stats) = run(BurstyService::moses(), config, harvest_schedule(), 30);
        assert!(stats.model.intercepted_predictions > 0);
    }

    #[test]
    fn broken_model_without_safeguards_hurts_latency_more() {
        let service = BurstyService::image_dnn();
        let unsafe_config =
            HarvestConfig { broken_model: true, ..HarvestConfig::without_safeguards() };
        let safe_config = HarvestConfig { broken_model: true, ..HarvestConfig::default() };
        let (unsafe_node, _) = run(service.clone(), unsafe_config, harvest_schedule(), 30);
        let (safe_node, _) = run(service, safe_config, harvest_schedule(), 30);
        // The P99 saturates at the worst-case value for both configurations
        // (a single starved control interval is enough), so compare the mean
        // latency and the fraction of time the primary VM was starved.
        let unsafe_mean = unsafe_node.with(|n| n.mean_latency_ms());
        let safe_mean = safe_node.with(|n| n.mean_latency_ms());
        assert!(
            unsafe_mean > safe_mean * 1.3,
            "safeguards should reduce latency impact: {unsafe_mean} vs {safe_mean}"
        );
        let unsafe_starved = unsafe_node.with(|n| n.starvation_fraction());
        let safe_starved = safe_node.with(|n| n.starvation_fraction());
        assert!(
            unsafe_starved > 2.0 * safe_starved,
            "safeguards should cut starvation: {unsafe_starved} vs {safe_starved}"
        );
    }

    #[test]
    fn saturated_samples_are_discarded_by_validation() {
        let node = shared_node(BurstyService::image_dnn());
        // Force saturation by starving the primary before the agent starts.
        node.with(|n| n.set_primary_cores(1));
        let (model, actuator) = smart_harvest(&node, HarvestConfig::default());
        let runtime = SimRuntime::new(model, actuator, harvest_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        assert!(report.stats.model.samples_discarded > 0);
    }

    #[test]
    fn actuator_without_prediction_returns_all_cores() {
        let node = shared_node(BurstyService::moses());
        node.with(|n| n.set_primary_cores(2));
        let (_, mut actuator) = smart_harvest(&node, HarvestConfig::default());
        actuator.take_action(Timestamp::from_millis(1), None);
        assert_eq!(node.with(|n| n.primary_cores()), 8);
    }

    #[test]
    fn cleanup_and_mitigate_return_cores() {
        let node = shared_node(BurstyService::moses());
        node.with(|n| n.set_primary_cores(3));
        let (_, mut actuator) = smart_harvest(&node, HarvestConfig::default());
        actuator.mitigate(Timestamp::from_millis(1));
        assert_eq!(node.with(|n| n.primary_cores()), 8);
        node.with(|n| n.set_primary_cores(3));
        actuator.clean_up(Timestamp::from_millis(2));
        assert_eq!(node.with(|n| n.primary_cores()), 8);
    }
}
