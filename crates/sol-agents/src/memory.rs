//! SmartMemory: page classification for two-tiered memory systems
//! (paper §5.3).
//!
//! The agent learns, per 2 MB batch of memory, the lowest access-bit scanning
//! frequency that does not under-sample the batch, using Thompson sampling
//! with a Beta prior (one bandit per batch over the candidate scan intervals
//! 300 ms … 9.6 s). Every 38.4-second learning epoch it labels each batch as
//! over-, under-, or well-sampled, updates the bandits, estimates the minimal
//! set of batches that contributed 80% of accesses (hot), and proposes the
//! rest as warm candidates for second-tier memory. Batches untouched for more
//! than 3 minutes are cold.
//!
//! Safeguards (paper §5.3):
//! * **Data validation** — scans that return driver errors fail the sample.
//! * **Model safeguard** — 10% of batches are ground-truth sampled at the
//!   maximum frequency; if the model-recommended rates miss more than 25% of
//!   their accesses, predictions are intercepted and a conservative default
//!   (only the coldest 5% of batches offloaded) is used.
//! * **Stale predictions** — no immediate action is needed; batches stay where
//!   they are and the Actuator safeguard handles any resulting SLO violation.
//! * **Actuator safeguard** — if the fraction of remote accesses over the
//!   recent window exceeds the SLO (20%), the hottest remote batches are
//!   migrated back to the first tier immediately.

use sol_core::actuator::{Actuator, ActuatorAssessment};
use sol_core::error::DataError;
use sol_core::model::{Model, ModelAssessment};
use sol_core::prediction::Prediction;
use sol_core::schedule::Schedule;
use sol_core::time::{SimDuration, Timestamp};
use sol_ml::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};
use sol_ml::thompson::ThompsonSampler;
use sol_node_sim::memory_node::MemoryNode;
use sol_node_sim::shared::Shared;

/// Candidate scan intervals, from the maximum frequency (300 ms) to the
/// minimum (9.6 s); each is double the previous (paper §5.3).
pub const SCAN_INTERVALS: [SimDuration; 6] = [
    SimDuration::from_millis(300),
    SimDuration::from_millis(600),
    SimDuration::from_millis(1_200),
    SimDuration::from_millis(2_400),
    SimDuration::from_millis(4_800),
    SimDuration::from_millis(9_600),
];

/// Configuration for the SmartMemory agent.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// Enable the model safeguard (ground-truth undersampling check).
    pub model_safeguard: bool,
    /// Enable the Actuator safeguard (remote-access SLO check).
    pub actuator_safeguard: bool,
    /// Target fraction of accesses that must stay local (0.8 in the paper,
    /// i.e. at most 20% remote).
    pub local_access_slo: f64,
    /// Fraction of total estimated accesses the hot set must cover. The paper
    /// targets the SLO value (0.8); this reproduction adds a small margin
    /// because the rate estimates behind the classification are noisier than
    /// the paper's per-page counters, and classifying exactly at the SLO makes
    /// the Actuator safeguard flap.
    pub hot_access_fraction: f64,
    /// Fraction of batches ground-truth sampled at the maximum frequency for
    /// the model safeguard (0.1).
    pub ground_truth_fraction: f64,
    /// Missed-access fraction above which the model is deemed to be
    /// undersampling (0.25).
    pub missed_access_threshold: f64,
    /// Fraction of the coldest batches offloaded by the conservative default
    /// prediction (0.05).
    pub default_offload_fraction: f64,
    /// Batches considered cold after this much time without an access
    /// (3 minutes).
    pub cold_after: SimDuration,
    /// Number of hottest remote batches migrated back on mitigation (100).
    pub mitigation_batches: usize,
    /// How long a prediction stays valid.
    pub prediction_validity: SimDuration,
    /// RNG seed for the Thompson samplers.
    pub seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            model_safeguard: true,
            actuator_safeguard: true,
            local_access_slo: 0.8,
            hot_access_fraction: 0.88,
            ground_truth_fraction: 0.1,
            missed_access_threshold: 0.25,
            default_offload_fraction: 0.05,
            cold_after: SimDuration::from_secs(180),
            mitigation_batches: 100,
            prediction_validity: SimDuration::from_secs(80),
            seed: 23,
        }
    }
}

impl MemoryConfig {
    /// A configuration with every safeguard disabled.
    pub fn without_safeguards() -> Self {
        MemoryConfig {
            model_safeguard: false,
            actuator_safeguard: false,
            ..MemoryConfig::default()
        }
    }

    /// A configuration with only the Actuator safeguard enabled (used by the
    /// Figure 8 ablation).
    pub fn actuator_safeguard_only() -> Self {
        MemoryConfig { model_safeguard: false, ..MemoryConfig::default() }
    }
}

/// How a batch should be placed, as decided by the Model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClass {
    /// Keep in (or migrate to) first-tier DRAM.
    Hot,
    /// Candidate for second-tier memory.
    Warm,
    /// Untouched for a long time; also kept in second-tier memory.
    Cold,
}

/// The placement plan flowing from the Model to the Actuator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieringPlan {
    /// Per-batch classification, indexed by batch id.
    pub classes: Vec<BatchClass>,
}

impl TieringPlan {
    /// Number of batches classified as hot.
    pub fn hot_count(&self) -> usize {
        self.classes.iter().filter(|c| **c == BatchClass::Hot).count()
    }

    /// Number of batches classified as warm.
    pub fn warm_count(&self) -> usize {
        self.classes.iter().filter(|c| **c == BatchClass::Warm).count()
    }

    /// Number of batches classified as cold.
    pub fn cold_count(&self) -> usize {
        self.classes.iter().filter(|c| **c == BatchClass::Cold).count()
    }
}

/// One round of access-bit scans (the Model's data sample type).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanRound {
    /// `(batch, pages_with_access_bit_set, accessed)` for each batch scanned
    /// this round.
    pub scans: Vec<(usize, u32, bool)>,
    /// Batches whose scan failed with a driver error.
    pub failures: u32,
}

#[derive(Debug, Clone)]
struct BatchState {
    bandit: ThompsonSampler,
    arm: usize,
    next_scan: Timestamp,
    scans_this_epoch: u32,
    set_scans_this_epoch: u32,
    pages_seen_this_epoch: u64,
    last_seen_accessed: Timestamp,
    ground_truth: bool,
}

/// The SmartMemory learning model.
pub struct MemoryModel {
    node: Shared<MemoryNode>,
    config: MemoryConfig,
    batches: Vec<BatchState>,
    epoch_index: u64,
    missed_fraction: f64,
    /// Number of consecutive epochs whose missed-access estimate exceeded the
    /// threshold; the safeguard requires two in a row so a single noisy
    /// ground-truth estimate does not wipe out a good placement.
    consecutive_missed_epochs: u32,
    /// Per-batch access-rate estimates from the last completed epoch,
    /// computed before the bandits pick new arms so the estimates match the
    /// intervals the scans actually used.
    rate_estimates: Vec<f64>,
    last_plan: Option<Vec<BatchClass>>,
}

impl std::fmt::Debug for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryModel")
            .field("batches", &self.batches.len())
            .field("epochs", &self.epoch_index)
            .finish()
    }
}

impl MemoryModel {
    /// Creates the model for a node handle.
    pub fn new(node: Shared<MemoryNode>, config: MemoryConfig) -> Self {
        let count = node.with(|n| n.batch_count());
        let ground_truth_every = (1.0 / config.ground_truth_fraction.max(1e-6)).round() as usize;
        let batches = (0..count)
            .map(|i| BatchState {
                bandit: ThompsonSampler::with_seed(SCAN_INTERVALS.len(), config.seed ^ i as u64),
                // Start at the maximum frequency so early epochs do not
                // under-sample while the bandits are still uninformed.
                arm: 0,
                next_scan: Timestamp::ZERO,
                scans_this_epoch: 0,
                set_scans_this_epoch: 0,
                pages_seen_this_epoch: 0,
                last_seen_accessed: Timestamp::ZERO,
                ground_truth: ground_truth_every != 0 && i % ground_truth_every.max(1) == 0,
            })
            .collect();
        MemoryModel {
            node,
            config,
            batches,
            epoch_index: 0,
            missed_fraction: 0.0,
            consecutive_missed_epochs: 0,
            rate_estimates: Vec::new(),
            last_plan: None,
        }
    }

    /// Number of learning epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epoch_index
    }

    /// The fraction of ground-truth accesses missed by the model-recommended
    /// scan rates in the last epoch (the model safeguard signal).
    pub fn missed_fraction(&self) -> f64 {
        self.missed_fraction
    }

    /// Estimated access activity per batch: the estimates stored by the last
    /// completed epoch when available, otherwise a live computation over the
    /// current epoch's partial scans.
    fn estimated_rates(&self) -> Vec<f64> {
        if !self.rate_estimates.is_empty() {
            return self.rate_estimates.clone();
        }
        self.live_rates()
    }

    /// Live per-batch rate proxy: the average number of page access bits found
    /// set per scan, divided by the scan interval. Using per-page counts (512
    /// pages per 2 MB batch) rather than the single batch bit gives enough
    /// resolution to rank batches even when every batch is touched at least
    /// once per scan; dividing by the interval makes estimates comparable
    /// across scan frequencies.
    fn live_rates(&self) -> Vec<f64> {
        self.batches
            .iter()
            .map(|b| {
                if b.scans_this_epoch == 0 {
                    0.0
                } else {
                    let pages_per_scan = b.pages_seen_this_epoch as f64 / b.scans_this_epoch as f64;
                    let interval = SCAN_INTERVALS[b.arm].as_secs_f64();
                    pages_per_scan / interval
                }
            })
            .collect()
    }

    fn classify(&self, now: Timestamp, rates: &[f64], hot_fraction: f64) -> Vec<BatchClass> {
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).expect("no NaN rates"));
        let total: f64 = rates.iter().sum();
        let mut classes = vec![BatchClass::Warm; rates.len()];
        let mut covered = 0.0;
        for &idx in &order {
            if total > 0.0 && covered / total >= hot_fraction {
                break;
            }
            classes[idx] = BatchClass::Hot;
            covered += rates[idx];
        }
        for (i, b) in self.batches.iter().enumerate() {
            if now.duration_since(b.last_seen_accessed) > self.config.cold_after {
                classes[i] = BatchClass::Cold;
            }
        }
        classes
    }
}

impl Model for MemoryModel {
    type Data = ScanRound;
    type Pred = TieringPlan;

    fn collect_data(&mut self, now: Timestamp) -> Result<ScanRound, DataError> {
        let mut round = ScanRound::default();
        let due: Vec<usize> = self
            .batches
            .iter()
            .enumerate()
            .filter(|(_, b)| now >= b.next_scan)
            .map(|(i, _)| i)
            .collect();
        for i in due {
            // Ground-truth batches are always scanned at the maximum
            // frequency; the others follow their bandit-chosen interval.
            let interval = if self.batches[i].ground_truth && self.config.model_safeguard {
                SCAN_INTERVALS[0]
            } else {
                SCAN_INTERVALS[self.batches[i].arm]
            };
            match self.node.with(|n| n.scan_batch(i)) {
                Ok(scan) => {
                    round.scans.push((i, scan.pages_set, scan.accessed));
                    self.batches[i].next_scan = now + interval;
                }
                Err(_) => {
                    round.failures += 1;
                    // Retry the failed batch on the next collection.
                    self.batches[i].next_scan = now + SCAN_INTERVALS[0];
                }
            }
        }
        if round.failures > 0 && round.scans.is_empty() {
            return Err(DataError::SourceUnavailable("all access-bit scans failed".into()));
        }
        Ok(round)
    }

    fn validate_data(&self, round: &ScanRound) -> bool {
        // The scanning driver reports failures explicitly; a round is valid
        // only if no scan in it failed (paper §5.3, "Validating data").
        round.failures == 0
    }

    fn commit_data(&mut self, now: Timestamp, round: ScanRound) {
        for (batch, pages_set, accessed) in round.scans {
            let state = &mut self.batches[batch];
            state.scans_this_epoch += 1;
            state.pages_seen_this_epoch += u64::from(pages_set);
            if accessed {
                state.set_scans_this_epoch += 1;
                state.last_seen_accessed = now;
            }
        }
    }

    fn update_model(&mut self, _now: Timestamp) {
        self.epoch_index += 1;
        // Freeze the rate estimates before new arms are chosen: the estimates
        // must be interpreted against the intervals the scans actually used.
        self.rate_estimates = self.live_rates();

        // Reward each batch's chosen interval based on how full its access
        // bits were when scanned (the per-page occupancy). Nearly saturated
        // bits mean the batch is under-sampled at this interval and should be
        // scanned faster; nearly empty bits mean it is over-sampled and can be
        // scanned slower; in between the interval is right. The fastest and
        // slowest intervals are treated as "right" when there is no faster or
        // slower arm to move to. This reproduces the paper's
        // over/under/well-sampled feedback with Beta-Bernoulli arms.
        let mut ground_truth_pages = 0u64;
        let mut model_rate_pages = 0u64;
        for state in &mut self.batches {
            if state.scans_this_epoch == 0 {
                continue;
            }
            let pages_per_scan = state.pages_seen_this_epoch as f64 / state.scans_this_epoch as f64;
            let occupancy = pages_per_scan / 512.0;
            if occupancy >= 0.6 {
                // Under-sampled: the current interval is too slow.
                if state.arm == 0 {
                    state.bandit.record(0, true);
                } else {
                    state.bandit.record(state.arm, false);
                    state.bandit.record(state.arm - 1, true);
                }
            } else if occupancy <= 0.05 {
                // Over-sampled: the current interval is needlessly fast.
                if state.arm + 1 == SCAN_INTERVALS.len() {
                    state.bandit.record(state.arm, true);
                } else {
                    state.bandit.record(state.arm, false);
                    state.bandit.record(state.arm + 1, true);
                }
            } else {
                state.bandit.record(state.arm, true);
            }
            if state.ground_truth {
                // Ground-truth batches are scanned at the maximum frequency;
                // estimate how many access bits the model-chosen (slower)
                // rate would have observed instead. Pages that are re-touched
                // within the slower interval saturate (one set bit covers many
                // accesses), so the estimate inverts the occupancy formula
                // rather than scaling linearly.
                let pages = 512.0;
                let pages_per_fast_scan =
                    state.pages_seen_this_epoch as f64 / state.scans_this_epoch.max(1) as f64;
                let occupancy = (pages_per_fast_scan / pages).min(0.999);
                let accesses_per_fast = -pages * (1.0 - occupancy).ln();
                let slowdown =
                    SCAN_INTERVALS[state.arm].as_secs_f64() / SCAN_INTERVALS[0].as_secs_f64();
                let pages_per_slow_scan =
                    pages * (1.0 - (-accesses_per_fast * slowdown / pages).exp());
                // Compare bits observed per unit time.
                ground_truth_pages += state.pages_seen_this_epoch;
                model_rate_pages += ((pages_per_slow_scan / slowdown)
                    * state.scans_this_epoch as f64)
                    .round() as u64;
            }
            // Choose the arm for the next epoch.
            state.arm = state.bandit.select();
        }
        self.missed_fraction = if ground_truth_pages == 0 {
            0.0
        } else {
            1.0 - (model_rate_pages as f64 / ground_truth_pages as f64).min(1.0)
        };
    }

    fn predict(&mut self, now: Timestamp) -> Option<Prediction<TieringPlan>> {
        let rates = self.estimated_rates();
        let classes = self.classify(now, &rates, self.config.hot_access_fraction);
        // Epoch counters are reset after classification so the next epoch
        // starts fresh.
        for state in &mut self.batches {
            state.scans_this_epoch = 0;
            state.set_scans_this_epoch = 0;
            state.pages_seen_this_epoch = 0;
        }
        self.last_plan = Some(classes.clone());
        Some(Prediction::model(TieringPlan { classes }, now, now + self.config.prediction_validity))
    }

    fn default_predict(&self, now: Timestamp) -> Prediction<TieringPlan> {
        // Conservative fallback: downsample everything to a comparable rate
        // and offload only the coldest few percent of batches (paper §5.3).
        let rates = self.estimated_rates();
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&a, &b| rates[a].partial_cmp(&rates[b]).expect("no NaN rates"));
        let offload =
            ((rates.len() as f64) * self.config.default_offload_fraction).floor() as usize;
        let mut classes = vec![BatchClass::Hot; rates.len()];
        for &idx in order.iter().take(offload) {
            classes[idx] = BatchClass::Warm;
        }
        Prediction::fallback(TieringPlan { classes }, now, now + self.config.prediction_validity)
    }

    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        if !self.config.model_safeguard {
            return ModelAssessment::Healthy;
        }
        if self.missed_fraction > self.config.missed_access_threshold {
            self.consecutive_missed_epochs += 1;
        } else {
            self.consecutive_missed_epochs = 0;
        }
        if self.consecutive_missed_epochs >= 2 {
            ModelAssessment::failing(format!(
                "model-recommended scan rates miss {:.0}% of accesses",
                self.missed_fraction * 100.0
            ))
        } else {
            ModelAssessment::Healthy
        }
    }

    /// Exports every batch's scan-interval posteriors as one state of shape
    /// `[batches * arms, 2]`: batch `i`'s arms occupy rows
    /// `i * arms .. (i + 1) * arms`.
    fn export_learned(&self) -> Option<LearnedState> {
        if self.batches.is_empty() {
            return None;
        }
        let arms = SCAN_INTERVALS.len();
        let values: Vec<f64> = self
            .batches
            .iter()
            .flat_map(|batch| batch.bandit.export_learned().values().to_vec())
            .collect();
        let state = LearnedState::new(
            StateKind::BetaPosteriors,
            vec![self.batches.len() * arms, 2],
            values,
        )
        .expect("Beta parameters are finite");
        Some(state)
    }

    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        let arms = SCAN_INTERVALS.len();
        if state.kind() != StateKind::BetaPosteriors {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::BetaPosteriors,
                found: state.kind(),
            });
        }
        let expected = vec![self.batches.len() * arms, 2];
        if state.shape() != expected {
            return Err(ExchangeError::ShapeMismatch { expected, found: state.shape().to_vec() });
        }
        // Validate every parameter up front so a bad tail batch cannot leave
        // the model half-imported.
        if let Some(index) = state.values().iter().position(|&v| v <= 0.0) {
            return Err(ExchangeError::InvalidValue {
                index,
                reason: "Beta parameters must be strictly positive",
            });
        }
        for (batch, chunk) in self.batches.iter_mut().zip(state.values().chunks_exact(arms * 2)) {
            let slice = LearnedState::new(StateKind::BetaPosteriors, vec![arms, 2], chunk.to_vec())
                .expect("validated above");
            batch.bandit.import_learned(&slice)?;
        }
        Ok(())
    }
}

/// The SmartMemory actuator: applies placement plans and enforces the
/// remote-access SLO safeguard.
pub struct MemoryActuator {
    node: Shared<MemoryNode>,
    config: MemoryConfig,
}

impl std::fmt::Debug for MemoryActuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryActuator").finish_non_exhaustive()
    }
}

impl MemoryActuator {
    /// Creates the actuator for a node handle.
    pub fn new(node: Shared<MemoryNode>, config: MemoryConfig) -> Self {
        MemoryActuator { node, config }
    }
}

impl Actuator for MemoryActuator {
    type Pred = TieringPlan;

    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<TieringPlan>>) {
        // With no (or a stale) prediction the pages simply stay where they
        // are (paper §5.3, "Handling stale predictions").
        let Some(pred) = pred else { return };
        self.node.with(|n| {
            for (batch, class) in pred.value().classes.iter().enumerate() {
                match class {
                    BatchClass::Hot => n.migrate_to_local(batch),
                    BatchClass::Warm | BatchClass::Cold => n.migrate_to_remote(batch),
                }
            }
        });
    }

    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        if !self.config.actuator_safeguard {
            return ActuatorAssessment::Acceptable;
        }
        let remote_fraction = self.node.with(|n| n.recent_remote_fraction());
        ActuatorAssessment::from_acceptable(remote_fraction <= 1.0 - self.config.local_access_slo)
    }

    fn mitigate(&mut self, _now: Timestamp) {
        // Immediately migrate the hottest remote batches back to the first
        // tier, starting with the hottest.
        self.node.with(|n| {
            let hottest = n.hottest_batches();
            let mut moved = 0;
            for batch in hottest {
                if moved >= self.config.mitigation_batches {
                    break;
                }
                if n.tier(batch) == sol_node_sim::memory_node::Tier::Remote {
                    n.migrate_to_local(batch);
                    moved += 1;
                }
            }
        });
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.node.with(|n| n.restore_all_local(None));
    }
}

/// The schedule SmartMemory runs with: scans are orchestrated every 300 ms
/// (the maximum scan frequency), learning epochs last 38.4 s (128 collection
/// rounds, 4× the slowest scan period), and the Actuator safeguard is checked
/// every 2 s.
pub fn memory_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(128)
        .data_collect_interval(SimDuration::from_millis(300))
        .max_epoch_time(SimDuration::from_millis(38_400))
        .min_data_per_epoch(64)
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(10))
        .assess_actuator_interval(SimDuration::from_secs(2))
        .build()
        .expect("static schedule is valid")
}

/// Convenience constructor: builds the model/actuator pair for a shared node.
pub fn smart_memory(
    node: &Shared<MemoryNode>,
    config: MemoryConfig,
) -> (MemoryModel, MemoryActuator) {
    (MemoryModel::new(node.clone(), config.clone()), MemoryActuator::new(node.clone(), config))
}

/// The SmartMemory agent packaged for
/// [`ScenarioBuilder::register`](sol_core::runtime::builder::ScenarioBuilder::register):
/// name `"smart-memory"`, the model/actuator pair for `node`, and the paper's
/// schedule.
pub fn memory_blueprint(
    node: &Shared<MemoryNode>,
    config: MemoryConfig,
) -> sol_core::runtime::builder::AgentBlueprint<MemoryModel, MemoryActuator> {
    let (model, actuator) = smart_memory(node, config);
    sol_core::runtime::builder::AgentBlueprint::new(
        "smart-memory",
        model,
        actuator,
        memory_schedule(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_core::prelude::*;
    use sol_node_sim::memory_node::{MemoryNodeConfig, MemoryWorkloadKind};

    fn shared_node(kind: MemoryWorkloadKind) -> Shared<MemoryNode> {
        let config = MemoryNodeConfig {
            batches: 128,
            accesses_per_sec: 20_000.0,
            ..MemoryNodeConfig::default()
        };
        Shared::new(MemoryNode::new(kind, config))
    }

    fn run(
        kind: MemoryWorkloadKind,
        config: MemoryConfig,
        secs: u64,
    ) -> (Shared<MemoryNode>, AgentStats) {
        let node = shared_node(kind);
        let (model, actuator) = smart_memory(&node, config);
        let runtime = SimRuntime::new(model, actuator, memory_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(secs)).unwrap();
        (node, report.stats)
    }

    #[test]
    fn offloads_cold_memory_while_meeting_slo() {
        let (node, stats) = run(MemoryWorkloadKind::ObjectStore, MemoryConfig::default(), 400);
        assert!(stats.model.epochs_completed >= 8);
        let remote = node.with(|n| n.remote_batch_count());
        let slo = node.with(|n| n.slo_attainment(0.8));
        assert!(remote > 20, "should offload a sizable fraction of batches, got {remote}");
        assert!(slo > 0.8, "SLO attainment {slo} should stay high");
    }

    #[test]
    fn adaptive_scanning_resets_fewer_access_bits_than_max_frequency() {
        let (smart_node, _) = run(MemoryWorkloadKind::SpecJbb, MemoryConfig::default(), 300);
        // Baseline: scan every batch at the maximum frequency for the same
        // duration.
        let baseline = shared_node(MemoryWorkloadKind::SpecJbb);
        let mut t = Timestamp::ZERO;
        while t < Timestamp::from_secs(300) {
            t += SimDuration::from_millis(300);
            baseline.with(|n| {
                n.advance_to(t);
                for b in 0..n.batch_count() {
                    let _ = n.scan_batch(b);
                }
            });
        }
        let smart_resets = smart_node.with(|n| n.access_bit_resets());
        let max_resets = baseline.with(|n| n.access_bit_resets());
        assert!(
            (smart_resets as f64) < 0.9 * max_resets as f64,
            "adaptive scanning should reset fewer bits: {smart_resets} vs {max_resets}"
        );
    }

    #[test]
    fn actuator_safeguard_recovers_from_slo_violations() {
        let node = shared_node(MemoryWorkloadKind::ObjectStore);
        // Sabotage placement: move the entire hot set remote before starting.
        node.with(|n| {
            n.advance_to(Timestamp::from_secs(5));
            let hottest: Vec<usize> = n.hottest_batches().into_iter().take(32).collect();
            for b in hottest {
                n.migrate_to_remote(b);
            }
        });
        let (_, mut actuator) = smart_memory(&node, MemoryConfig::default());
        // Let the bad placement show up in the counters.
        node.with(|n| n.advance_to(Timestamp::from_secs(20)));
        assert!(!actuator.assess_performance(Timestamp::from_secs(20)).is_acceptable());
        actuator.mitigate(Timestamp::from_secs(20));
        node.with(|n| n.advance_to(Timestamp::from_secs(60)));
        assert!(
            node.with(|n| n.recent_remote_fraction()) < 0.2,
            "mitigation should restore the SLO"
        );
    }

    #[test]
    fn default_prediction_offloads_only_coldest_batches() {
        let node = shared_node(MemoryWorkloadKind::Sql);
        let (mut model, _) = smart_memory(&node, MemoryConfig::default());
        node.with(|n| n.advance_to(Timestamp::from_secs(10)));
        // Populate estimates with one round of scans.
        let round = model.collect_data(Timestamp::from_secs(10)).unwrap();
        model.commit_data(Timestamp::from_secs(10), round);
        let default = model.default_predict(Timestamp::from_secs(10));
        let plan = default.value();
        assert!(plan.warm_count() <= plan.classes.len() / 10);
        assert_eq!(plan.cold_count(), 0);
    }

    #[test]
    fn cleanup_restores_every_batch_to_local() {
        let node = shared_node(MemoryWorkloadKind::ObjectStore);
        node.with(|n| {
            n.migrate_to_remote(0);
            n.migrate_to_remote(1);
        });
        let (_, mut actuator) = smart_memory(&node, MemoryConfig::default());
        actuator.clean_up(Timestamp::from_secs(1));
        assert_eq!(node.with(|n| n.remote_batch_count()), 0);
    }

    #[test]
    fn stale_prediction_leaves_placement_unchanged() {
        let node = shared_node(MemoryWorkloadKind::ObjectStore);
        node.with(|n| n.migrate_to_remote(5));
        let (_, mut actuator) = smart_memory(&node, MemoryConfig::default());
        actuator.take_action(Timestamp::from_secs(1), None);
        assert_eq!(node.with(|n| n.remote_batch_count()), 1);
    }
}
