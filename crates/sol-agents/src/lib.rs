//! # sol-agents — the three SOL demonstration agents
//!
//! Implementations of the agents from paper §5, built on the
//! [`sol-core`](sol_core) framework, the [`sol-ml`](sol_ml) learners, and the
//! [`sol-node-sim`](sol_node_sim) substrate:
//!
//! * [`overclock`] — **SmartOverclock**: Q-learning CPU overclocking that
//!   boosts frequency only when the workload benefits.
//! * [`harvest`] — **SmartHarvest**: cost-sensitive classification that
//!   predicts near-future CPU demand so idle cores can be loaned out safely.
//! * [`memory`] — **SmartMemory**: Thompson-sampling access-bit scanning and
//!   hot/warm/cold page classification for two-tier memory.
//! * [`colocation`] — co-location presets (two-agent and full three-agent
//!   populations) on one shared
//!   [`MultiNode`](sol_node_sim::multi_node::MultiNode), assembled through the
//!   typed [`ScenarioBuilder`](sol_core::runtime::builder::ScenarioBuilder).
//! * [`poison`] — adversarial learners for the fleet learning plane: a
//!   [`PoisonedLearner`](poison::PoisonedLearner) wrapper that corrupts
//!   exported state, seeded victim plans, and the poisoned-overclock fleet
//!   scenario that demonstrates robust aggregation.
//!
//! Each module provides a `Model`/`Actuator` pair, a `*_schedule()` helper
//! matching the paper's control-loop timing, a `*_blueprint()` package for
//! [`ScenarioBuilder::register`](sol_core::runtime::builder::ScenarioBuilder::register),
//! configuration structs with per-safeguard toggles (so the failure-injection
//! experiments can compare "with" and "without" variants), and
//! fault-injection flags (broken model).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod colocation;
pub mod harvest;
pub mod memory;
pub mod overclock;
pub mod poison;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::colocation::{
        colocated_agents, colocated_recipe, three_agents, three_agents_recipe, ColocatedAgents,
        ColocatedRecipe, ColocationConfig, ThreeAgentConfig, ThreeAgents, ThreeAgentsRecipe,
        MEMORY_SLO_ATTAINMENT_FLOOR,
    };
    pub use crate::harvest::{
        blocking_harvest_schedule, harvest_blueprint, harvest_schedule, smart_harvest,
        CoreDemandPrediction, HarvestActuator, HarvestConfig, HarvestModel,
    };
    pub use crate::memory::{
        memory_blueprint, memory_schedule, smart_memory, BatchClass, MemoryActuator, MemoryConfig,
        MemoryModel, ScanRound, TieringPlan, SCAN_INTERVALS,
    };
    pub use crate::overclock::{
        blocking_overclock_schedule, overclock_blueprint, overclock_schedule, smart_overclock,
        FrequencyDecision, OverclockActuator, OverclockConfig, OverclockModel,
    };
    pub use crate::poison::{
        poisoned_overclock_recipe, PoisonAttack, PoisonPlan, PoisonedLearner,
        PoisonedOverclockConfig, PoisonedOverclockRecipe,
    };
}
