//! SmartOverclock end to end: run the Q-learning overclocking agent on the
//! three paper workloads and compare it against static frequency policies.
//!
//! Run with: `cargo run --release --example overclocking`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(200);
    println!("workload     policy            perf-score   avg-power-W");
    for kind in OverclockWorkloadKind::ALL {
        // Static baselines.
        for freq in FREQUENCY_LEVELS_GHZ {
            let node = Shared::new(CpuNode::new(
                kind.build(8),
                CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
            ));
            node.with(|n| {
                n.set_frequency_ghz(freq);
                n.advance_to(Timestamp::ZERO + horizon);
            });
            let (score, power) = node.with(|n| (n.performance().score, n.average_power_watts()));
            println!(
                "{:<12} static {:>3.1} GHz    {:>10.4}   {:>10.1}",
                kind.name(),
                freq,
                score,
                power
            );
        }
        // SmartOverclock.
        let node = Shared::new(CpuNode::new(
            kind.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(horizon)?;
        let (score, power) = node.with(|n| (n.performance().score, n.average_power_watts()));
        println!(
            "{:<12} SmartOverclock    {:>10.4}   {:>10.1}   ({} epochs, {} default predictions)",
            kind.name(),
            score,
            power,
            report.stats.model.epochs_completed,
            report.stats.model.default_predictions
        );
    }
    Ok(())
}
