//! SmartHarvest end to end: harvest idle cores from a latency-sensitive
//! primary VM and show the latency impact compared with not harvesting.
//!
//! Run with: `cargo run --release --example harvesting`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(90);
    for service in [BurstyService::image_dnn(), BurstyService::moses()] {
        // Baseline: the primary VM keeps all cores.
        let baseline = Shared::new(HarvestNode::new(service.clone(), HarvestNodeConfig::default()));
        baseline.with(|n| n.advance_to(Timestamp::ZERO + horizon));
        let baseline_p99 = baseline.with(|n| n.p99_latency_ms());

        // SmartHarvest.
        let node = Shared::new(HarvestNode::new(service.clone(), HarvestNodeConfig::default()));
        let (model, actuator) = smart_harvest(&node, HarvestConfig::default());
        let runtime = SimRuntime::new(model, actuator, harvest_schedule(), node.clone());
        let report = runtime.run_for(horizon)?;

        let (p99, mean, harvested, starved) = node.with(|n| {
            (
                n.p99_latency_ms(),
                n.mean_latency_ms(),
                n.harvested_core_seconds(),
                n.starvation_fraction(),
            )
        });
        println!("primary VM: {}", service.name());
        println!("  baseline P99 latency           : {baseline_p99:.1} ms");
        println!("  SmartHarvest P99 / mean latency: {p99:.1} ms / {mean:.1} ms");
        println!(
            "  harvested capacity             : {harvested:.0} core-seconds over {} s",
            horizon.as_millis() / 1000
        );
        println!("  starved fraction of time       : {:.2}%", starved * 100.0);
        println!(
            "  agent: {} epochs, {} model predictions, {} safeguard triggers",
            report.stats.model.epochs_completed,
            report.stats.model.model_predictions,
            report.stats.actuator.safeguard_triggers
        );
        println!();
    }
    Ok(())
}
