//! Fleet churn: crash, join, and drain as first-class fleet events.
//!
//! Eight placeable servers — each co-hosting the SmartOverclock and
//! SmartHarvest learners — run under the `GreedyPacker` while a seeded
//! `FaultPlan` injects availability chaos mid-run: servers crash (their VMs
//! are displaced and must be re-placed), fresh servers join and start
//! learning from scratch, and servers drain (the packer evacuates them, and
//! they retire once empty). The dashboard shows each node's final lifecycle
//! state, the displaced/replaced accounting, and that the on-node learners'
//! safeguards hold steady through the churn (compared against a fault-free
//! run of the identical fleet).
//!
//! This generalizes `failure_injection` — which breaks one agent's inputs,
//! model, and scheduling — to breaking the fleet itself.
//!
//! Run with: `cargo run --release --example fleet_churn`

use sol::prelude::*;
use sol_bench::placement_experiments::{churn_trace, PLACEABLE_CORES, PLACEMENT_FLEET_SEED};

/// The chaos scenario: two crashes, two joins, one drain over the horizon.
fn fault_plan(horizon: SimDuration) -> FaultPlan {
    FaultPlan::generate(
        0xC4A05,
        8,
        &FaultPlanConfig { crashes: 2, joins: 2, drains: 1, span: horizon },
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(60);
    let preset = colocated_recipe(ColocationConfig {
        placeable_cores: PLACEABLE_CORES,
        ..ColocationConfig::default()
    });
    let config =
        FleetConfig { nodes: 8, threads: 4, seed: PLACEMENT_FLEET_SEED, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe.clone(), config.clone())?;

    // Fault-free baseline: the same fleet and arrival trace, no chaos.
    let mut calm_packer = GreedyPacker::new(churn_trace(32, horizon));
    let baseline = fleet.run_with(&mut calm_packer, horizon)?;

    // Chaos run: same trace, plus the seeded fault plan.
    let mut packer = GreedyPacker::new(churn_trace(32, horizon));
    let report = fleet.run_with_faults(&mut packer, fault_plan(horizon), horizon)?;

    println!(
        "fleet: {} nodes to start, horizon {horizon}, {} sync epochs",
        config.nodes, report.epochs
    );
    println!("\ninjected faults:");
    for fault in fault_plan(horizon).events() {
        println!("  t={:<4} {:?}", format!("{}", fault.at), fault.event);
    }

    println!("\nnode lifecycle at the horizon:");
    for node in &report.nodes {
        let r = &node.lifecycle;
        let joined = if r.joined_epoch > 0 {
            format!(" joined@epoch{}", r.joined_epoch)
        } else {
            String::new()
        };
        println!(
            "  node {}  {:<8} v{}{}  ran {}  [{} resident VM(s)]",
            node.node,
            format!("{}", r.state),
            r.version,
            joined,
            node.ended_at,
            node.workloads.len(),
        );
    }

    let p = &report.placement;
    println!("\nplacement dashboard under churn:");
    println!("  admitted            {}", p.admitted);
    println!("  departed            {}", p.departed);
    println!("  migrated            {}", p.migrated);
    println!("  displaced by crash  {}", p.displaced);
    println!("  re-placed           {}", p.replaced);
    println!("  failed placements   {}", p.failed_placements);
    println!(
        "  packing efficiency  {:.2} (baseline {:.2})",
        { p.packing_efficiency },
        baseline.placement.packing_efficiency
    );

    println!("\nlearning survives the churn (surviving nodes vs fault-free baseline):");
    for (label, handle) in [
        ("smart-overclock", AgentId::from(preset.overclock)),
        ("smart-harvest", AgentId::from(preset.harvest)),
    ] {
        let churned = report.role(handle);
        let calm = baseline.role(handle);
        println!(
            "  {label:<16} {} nodes aggregated  safeguard-rate {:.2} (baseline {:.2})  \
             epochs p50 {} (baseline {})",
            churned.nodes,
            churned.safeguard_activation_rate,
            calm.safeguard_activation_rate,
            churned.epochs_completed.p50,
            calm.epochs_completed.p50,
        );
    }

    // The acceptance bar: the chaos actually happened, displaced work was
    // re-placed, joined nodes learned, and the whole report is byte-identical
    // when re-run on a single worker thread.
    assert!(p.displaced > 0, "a crash must displace VMs");
    assert!(p.replaced > 0, "displaced VMs must be re-placed");
    let crashed = report.nodes.iter().filter(|n| n.lifecycle.state == NodeState::Crashed).count();
    let joined: Vec<_> = report.nodes.iter().filter(|n| n.lifecycle.joined_epoch > 0).collect();
    assert_eq!(crashed, 2, "both crashes must land");
    assert_eq!(joined.len(), 2, "both joins must land");
    for node in &joined {
        assert!(
            node.agents.iter().any(|a| a.stats.model.epochs_completed > 0),
            "a joined node must actually learn"
        );
    }
    let mut packer_again = GreedyPacker::new(churn_trace(32, horizon));
    let single = FleetRuntime::new(preset.recipe.clone(), FleetConfig { threads: 1, ..config })?
        .run_with_faults(&mut packer_again, fault_plan(horizon), horizon)?;
    assert_eq!(
        format!("{report:#?}"),
        format!("{single:#?}"),
        "chaos runs must be byte-identical across worker-thread counts"
    );
    println!("\n4-thread and 1-thread chaos runs produced byte-identical reports");
    Ok(())
}
