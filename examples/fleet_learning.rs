//! The fleet learning plane: exchange, robust aggregation, and warm starts.
//!
//! Two experiments on a fleet of SmartOverclock agents pinned to disk-bound
//! workloads (where the *correct* learned policy is "do not overclock"):
//!
//! 1. **Robustness.** Two of eight nodes are Byzantine: they sign-flip and
//!    amplify the Q-tables they export, telling the fleet that overclocking
//!    is great. Under `AggregationRule::Mean` the poison survives averaging
//!    and honest nodes start overclocking — visible as model-safeguard
//!    interceptions climbing fleet-wide. Under the robust rules
//!    (`CoordinateWiseMedian`, `TrimmedMean`) the minority is voted down and
//!    the fleet behaves like an unpoisoned one.
//! 2. **Warm starts.** A fresh server joins an honest learning fleet mid-run
//!    and imports the fleet aggregate before its first epoch. Its safeguard
//!    fires strictly less often than the same server joining a fleet with the
//!    learning plane disabled, because it skips the exploration phase the
//!    incumbents already paid for.
//!
//! Run with: `cargo run --release --example fleet_learning`

use sol::prelude::*;
use sol_agents::poison::{poisoned_overclock_recipe, PoisonAttack, PoisonedOverclockConfig};
use sol_ml::exchange::{AggregationRule, BlendPolicy};

const NODES: usize = 8;
const VICTIMS: usize = 2;
const HORIZON_SECS: u64 = 240;
const FLEET_SEED: u64 = 0x1EA2;

fn fleet_config(learning: Option<LearningPlane>) -> FleetConfig {
    FleetConfig { nodes: NODES, threads: 4, seed: FLEET_SEED, learning, ..FleetConfig::default() }
}

fn plane(rule: AggregationRule) -> LearningPlane {
    LearningPlane { exchange_every: 5, rule, blend: BlendPolicy::Replace }
}

/// Runs the poisoned-overclock fleet and returns the report.
fn run(
    victims: usize,
    learning: Option<LearningPlane>,
) -> Result<FleetReport, Box<dyn std::error::Error>> {
    let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
        victims,
        attack: PoisonAttack::SignFlip { gain: 4.0 },
        nodes: NODES,
        ..PoisonedOverclockConfig::default()
    });
    let fleet = FleetRuntime::new(preset.recipe, fleet_config(learning))?;
    Ok(fleet.run(SimDuration::from_secs(HORIZON_SECS))?)
}

/// Fleet-wide model-safeguard interceptions: how often a node's own Δ-reward
/// safeguard had to veto the (possibly poisoned) model.
fn interceptions(report: &FleetReport) -> u64 {
    report.roles[0].totals.model.intercepted_predictions
}

fn mean_power(report: &FleetReport) -> f64 {
    report.metric("avg_power_watts").map(|m| m.total / m.nodes as f64).unwrap_or(0.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- part 1
    println!("== robust aggregation under poisoning ==");
    println!(
        "{NODES} smart-overclock nodes on disk-bound workloads, {VICTIMS} Byzantine \
         (sign-flip x4 exports), exchange every 5 epochs, blend = replace\n"
    );

    let clean = run(0, Some(plane(AggregationRule::Mean)))?;
    let mean = run(VICTIMS, Some(plane(AggregationRule::Mean)))?;
    let median = run(VICTIMS, Some(plane(AggregationRule::CoordinateWiseMedian)))?;
    let trimmed = run(VICTIMS, Some(plane(AggregationRule::TrimmedMean { k: VICTIMS })))?;

    println!("{:<26} {:>14} {:>16}", "aggregation", "interceptions", "avg power (W)");
    for (label, report) in [
        ("mean, no poison", &clean),
        ("mean, poisoned", &mean),
        ("median, poisoned", &median),
        ("trimmed(k=2), poisoned", &trimmed),
    ] {
        println!("{:<26} {:>14} {:>16.2}", label, interceptions(report), mean_power(report),);
    }
    let stats = mean.learning;
    println!(
        "\nlearning plane (poisoned mean run): {} rounds, {} exports, {} redistributed, \
         {} rejected, {} KiB exchanged",
        stats.rounds,
        stats.participants,
        stats.redistributed,
        stats.rejected,
        stats.bytes_exchanged / 1024,
    );

    // ---------------------------------------------------------------- part 2
    println!("\n== warm starts across churn ==");
    let faults = || {
        FaultPlan::from_events(
            [120u64, 150, 180]
                .iter()
                .map(|&secs| FaultEvent {
                    at: Timestamp::ZERO + SimDuration::from_secs(secs),
                    event: LifecycleEvent::Join,
                })
                .collect(),
        )
    };
    let joined_interceptions =
        |learning: Option<LearningPlane>| -> Result<u64, Box<dyn std::error::Error>> {
            let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
                victims: 0,
                nodes: NODES,
                ..PoisonedOverclockConfig::default()
            });
            let fleet = FleetRuntime::new(preset.recipe, fleet_config(learning))?;
            let report = fleet.run_with_faults(
                &mut NullController,
                faults(),
                SimDuration::from_secs(HORIZON_SECS),
            )?;
            let mut total = 0;
            for joined in report.nodes.iter().filter(|n| n.lifecycle.joined_epoch > 0) {
                let model = &joined.agents[0].stats.model;
                println!(
                    "  joined node {}: joined@epoch{}, {} epochs completed, {} interceptions",
                    joined.node,
                    joined.lifecycle.joined_epoch,
                    model.epochs_completed,
                    model.intercepted_predictions,
                );
                total += model.intercepted_predictions;
            }
            println!("  (warm starts recorded: {})", report.learning.warm_starts);
            Ok(total)
        };

    // Exchanging every epoch maximizes what a joiner inherits: its table is
    // re-synced to the fleet consensus after every local exploration detour.
    let warm_plane = LearningPlane {
        exchange_every: 1,
        rule: AggregationRule::CoordinateWiseMedian,
        blend: BlendPolicy::Replace,
    };
    println!("cold start (learning plane disabled):");
    let cold = joined_interceptions(None)?;
    println!("warm start (median aggregate imported at join, exchange every epoch):");
    let warm = joined_interceptions(Some(warm_plane))?;

    println!(
        "\njoined-node safeguard interceptions (3 joiners): cold {cold} vs warm {warm} \
         ({}% reduction)",
        ((cold - cold.min(warm)) * 100).checked_div(cold).unwrap_or(0),
    );

    // The acceptance bar.
    assert!(
        interceptions(&mean) > interceptions(&clean),
        "sign-flip poisoning must degrade a mean-aggregating fleet"
    );
    assert!(
        interceptions(&median) < interceptions(&mean),
        "the coordinate-wise median must shrug the poison off"
    );
    assert!(
        interceptions(&trimmed) < interceptions(&mean),
        "the trimmed mean must shrug the poison off"
    );
    assert!(warm < cold, "a warm-started joiner must trip its safeguard less than a cold one");
    println!("\nrobust rules held; warm start beat cold start");
    Ok(())
}
