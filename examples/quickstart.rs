//! Quickstart: build a tiny SOL agent from scratch and run it on both the
//! deterministic simulation runtime and the threaded runtime.
//!
//! The agent watches a noisy "queue depth" signal, learns its average, and
//! throttles an (imaginary) background task whenever the predicted depth is
//! high. It exercises every part of the SOL API: data validation, model
//! assessment, default predictions, the Actuator safeguard, and clean-up.
//!
//! Run with: `cargo run --example quickstart`

use sol::prelude::*;

/// Telemetry sample: the current queue depth.
struct QueueDepthModel {
    rng: rand::rngs::StdRng,
    window: SlidingWindow,
    mean: Ewma,
}

impl Model for QueueDepthModel {
    type Data = f64;
    type Pred = f64;

    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        use rand::Rng;
        // A noisy signal that drifts between 0 and 100.
        Ok(50.0 + 40.0 * self.rng.gen::<f64>() - 20.0)
    }

    fn validate_data(&self, sample: &f64) -> bool {
        sample.is_finite() && (0.0..=100.0).contains(sample)
    }

    fn commit_data(&mut self, _now: Timestamp, sample: f64) {
        self.window.push(sample);
    }

    fn update_model(&mut self, _now: Timestamp) {
        self.mean.push(self.window.mean());
    }

    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.mean.value(), now, now + SimDuration::from_secs(1)))
    }

    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        // When in doubt, predict a high queue depth so the actuator throttles.
        Prediction::fallback(100.0, now, now + SimDuration::from_secs(1))
    }

    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        if self.mean.is_initialized() {
            ModelAssessment::Healthy
        } else {
            ModelAssessment::failing("no data yet")
        }
    }
}

/// Throttles a background task when the predicted queue depth is high.
#[derive(Default)]
struct ThrottleActuator {
    throttled: bool,
    actions: u64,
}

impl Actuator for ThrottleActuator {
    type Pred = f64;

    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
        self.actions += 1;
        self.throttled = match pred {
            Some(p) => *p.value() > 60.0,
            // No prediction: throttle, the conservative choice.
            None => true,
        };
    }

    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }

    fn mitigate(&mut self, _now: Timestamp) {
        self.throttled = true;
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.throttled = false;
    }
}

fn model() -> QueueDepthModel {
    QueueDepthModel { rng: seeded_rng(7), window: SlidingWindow::new(32), mean: Ewma::new(0.3) }
}

fn schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(10)
        .data_collect_interval(SimDuration::from_millis(100))
        .max_epoch_time(SimDuration::from_secs(2))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(5))
        .assess_actuator_interval(SimDuration::from_secs(1))
        .build()
        .expect("valid schedule")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deterministic simulation: ideal for tests and experiments.
    let runtime =
        SimRuntime::new(model(), ThrottleActuator::default(), schedule(), NullEnvironment);
    let report = runtime.run_for(SimDuration::from_secs(60))?;
    println!(
        "simulation: {} epochs, {} actions, throttled at end: {}",
        report.stats.model.epochs_completed, report.actuator.actions, report.actuator.throttled
    );
    println!(
        "            model predictions: {}, default predictions: {}",
        report.stats.model.model_predictions, report.stats.model.default_predictions
    );

    // 2. Threaded runtime: the deployment shape from the paper (two OS
    //    threads connected by a prediction queue). Runs for one wall-clock
    //    second here.
    let agent = run_agent(model(), ThrottleActuator::default(), schedule());
    let report = agent.run_for(std::time::Duration::from_secs(1))?;
    println!(
        "threaded:   {} epochs, {} actions, clean-up ran: {}",
        report.stats.model.epochs_completed,
        report.actuator.actions,
        report.stats.actuator.cleanups == 1
    );
    Ok(())
}
