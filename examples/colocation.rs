//! Co-location end to end: SmartOverclock and SmartHarvest share one node,
//! driven by the multi-agent event-queue runtime. Midway through the run the
//! overclock agent's Model thread is delayed for 30 seconds — the harvest
//! agent keeps running beside it, and each agent's safety counters are
//! reported separately.
//!
//! Run with: `cargo run --release --example colocation`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(120);

    let agents = colocated_agents(ColocationConfig::default());
    let (overclock, harvest) = (agents.overclock, agents.harvest);
    let (cpu, harvest_node) = (agents.cpu.clone(), agents.harvest_node.clone());

    // Targeted failure injection: only the overclock Model thread stalls.
    // The typed handle converts into an AgentId for the intervention API.
    let mut runtime = agents.runtime;
    runtime.delay_model_at(overclock, Timestamp::from_secs(45), SimDuration::from_secs(30));

    let report = runtime.run_for(horizon)?;

    println!("co-located run: {} agents, horizon {}", report.agents.len(), horizon);
    for agent in &report.agents {
        let s = &agent.stats;
        println!(
            "  {:<16} epochs={:<4} short-circuited={:<3} model-preds={:<4} defaults={:<4} \
             safeguard-trips={} timeouts={}",
            agent.name,
            s.model.epochs_completed,
            s.model.epochs_short_circuited,
            s.model.model_predictions,
            s.model.default_predictions,
            s.actuator.safeguard_triggers,
            s.actuator.actuation_timeouts,
        );
    }

    let (perf, power) = cpu.with(|n| (n.performance().score, n.average_power_watts()));
    let (p99, harvested) = harvest_node.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
    println!("node outcome:");
    println!("  overclocked VM: perf score {perf:.3}, avg power {power:.1} W");
    println!("  primary VM:     p99 latency {p99:.2} ms, harvested {harvested:.1} core-s");

    let delayed = report.agent(overclock).stats().model.epochs_completed;
    let harvest_epochs = report.agent(harvest).stats().model.epochs_completed;
    assert!(delayed < 120, "the 30s delay must cost the overclock agent epochs");
    assert!(harvest_epochs > 2_000, "the harvest agent must be unaffected enough to keep learning");
    println!("targeted delay verified: overclock lost epochs, harvest kept {harvest_epochs}");
    Ok(())
}
