//! Fleet-level workload placement: the epoch barrier as a programmable
//! coordination point.
//!
//! Eight placeable servers — each co-hosting the SmartOverclock and
//! SmartHarvest learners — run under the harvest-aware `GreedyPacker`, which
//! admits, drains, rebalances, and migrates VMs from a seeded arrival trace
//! at every epoch boundary. The dashboard shows what the packer did and that
//! the on-node learners' safeguard-activation rates hold steady under the
//! migration churn (compared against a churn-free `NullController` run of
//! the identical fleet).
//!
//! Run with: `cargo run --release --example placement`

use sol::prelude::*;
use sol_bench::placement_experiments::{churn_trace, PLACEABLE_CORES, PLACEMENT_FLEET_SEED};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(60);
    let preset = colocated_recipe(ColocationConfig {
        placeable_cores: PLACEABLE_CORES,
        ..ColocationConfig::default()
    });
    let config =
        FleetConfig { nodes: 8, threads: 4, seed: PLACEMENT_FLEET_SEED, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe.clone(), config.clone())?;

    // Churn-free baseline: the same fleet, nothing placed.
    let baseline = fleet.run(horizon)?;

    // Churning run: 32 VM arrivals over the horizon, packed worst-fit with
    // rebalancing migrations.
    let trace = churn_trace(32, horizon);
    let mut packer = GreedyPacker::new(trace);
    let report = fleet.run_with(&mut packer, horizon)?;

    let p = &report.placement;
    println!(
        "fleet: {} nodes x {PLACEABLE_CORES} placeable cores, horizon {horizon}, {} sync epochs",
        report.nodes.len(),
        report.epochs
    );
    println!("\nplacement dashboard:");
    println!("  commands issued     {}", p.commands);
    println!("  admitted            {}", p.admitted);
    println!("  departed            {}", p.departed);
    println!("  migrated            {}", p.migrated);
    println!("  failed placements   {}", p.failed_placements);
    println!("  deferred arrivals   {}", packer.deferred_placements());
    println!(
        "  occupancy p50/p90/max  {:.2} / {:.2} / {:.2}",
        p.occupancy.p50, p.occupancy.p90, p.occupancy.max
    );
    println!("  packing efficiency  {:.2}", p.packing_efficiency);

    println!("\nper-node placement at the horizon:");
    for node in &report.nodes {
        let resident: Vec<String> =
            node.workloads.iter().map(|u| format!("{}({:.1}c)", u.id, u.cores)).collect();
        println!("  node {}  [{}]", node.node, resident.join(" "));
    }

    println!("\nsafety under churn (vs churn-free baseline):");
    for (label, handle) in [
        ("smart-overclock", AgentId::from(preset.overclock)),
        ("smart-harvest", AgentId::from(preset.harvest)),
    ] {
        let churned = report.role(handle);
        let calm = baseline.role(handle);
        println!(
            "  {label:<16} safeguard-rate {:.2} (baseline {:.2})  trips {} (baseline {})",
            churned.safeguard_activation_rate,
            calm.safeguard_activation_rate,
            churned.totals.actuator.safeguard_triggers,
            calm.totals.actuator.safeguard_triggers,
        );
    }
    let p99 = report.metric("p99_latency_ms").expect("recipe reports p99");
    let p99_base = baseline.metric("p99_latency_ms").expect("recipe reports p99");
    println!("  p99 latency mean    {:.2} ms (baseline {:.2} ms)", p99.mean, p99_base.mean);

    // The acceptance bar: real churn happened (at least one migration), and
    // the whole report is byte-identical when the fleet is re-run with the
    // same trace on a single worker thread.
    assert!(p.admitted > 0, "the packer must admit VMs");
    assert!(p.migrated > 0, "the packer must migrate at least one VM");
    let mut packer_again = GreedyPacker::new(churn_trace(32, horizon));
    let single = FleetRuntime::new(preset.recipe.clone(), FleetConfig { threads: 1, ..config })?
        .run_with(&mut packer_again, horizon)?;
    assert_eq!(
        format!("{report:#?}"),
        format!("{single:#?}"),
        "placement runs must be byte-identical across worker-thread counts"
    );
    println!("\n4-thread and 1-thread placement runs produced byte-identical reports");
    Ok(())
}
