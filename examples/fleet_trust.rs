//! The fleet trust plane: divergence scoring, poisoner identification, and
//! automated quarantine.
//!
//! The learning-plane example shows robust aggregation *containing* Byzantine
//! exports; this one shows the trust plane *evicting* the nodes that keep
//! sending them. Two of eight smart-overclock nodes sign-flip and amplify the
//! Q-tables they export. On every exchange round the coordinator measures
//! each node's export against the post-aggregation consensus (L2 distance per
//! agent slot, normalized into a robust z-score across the round's
//! participants), decays accumulated suspicion, and walks persistent
//! offenders through `Trusted → Suspect → Quarantined`:
//!
//! * a **Suspect**'s exports are excluded from aggregation (it still receives
//!   the consensus, which is harmless by construction);
//! * a **Quarantined** node is handed to the lifecycle layer as a `Drain` and
//!   retires through the ordinary `Draining → Drained` machinery.
//!
//! A clean fleet of identical shape runs the same policy and records zero
//! trust actions — the detector's false-positive floor.
//!
//! Run with: `cargo run --release --example fleet_trust`

use sol::prelude::*;
use sol_agents::poison::{
    poisoned_overclock_recipe, PoisonAttack, PoisonPlan, PoisonedOverclockConfig,
};
use sol_ml::exchange::{AggregationRule, BlendPolicy};

const NODES: usize = 8;
const VICTIMS: usize = 2;
const HORIZON_SECS: u64 = 120;
const FLEET_SEED: u64 = 0x1EA2;

fn run(victims: usize) -> Result<(FleetReport, PoisonPlan), Box<dyn std::error::Error>> {
    let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
        victims,
        attack: PoisonAttack::SignFlip { gain: 4.0 },
        nodes: NODES,
        ..PoisonedOverclockConfig::default()
    });
    let config = FleetConfig {
        nodes: NODES,
        threads: 4,
        seed: FLEET_SEED,
        learning: Some(LearningPlane {
            exchange_every: 5,
            rule: AggregationRule::CoordinateWiseMedian,
            blend: BlendPolicy::Replace,
        }),
        trust: Some(TrustPolicy::default()),
        ..FleetConfig::default()
    };
    let report =
        FleetRuntime::new(preset.recipe, config)?.run(SimDuration::from_secs(HORIZON_SECS))?;
    Ok((report, preset.plan))
}

fn verdict_label(verdict: TrustVerdict) -> &'static str {
    match verdict {
        TrustVerdict::Trusted => "trusted",
        TrustVerdict::Suspect => "suspect",
        TrustVerdict::Quarantined => "QUARANTINED",
    }
}

fn print_table(report: &FleetReport, plan: &PoisonPlan) {
    println!(
        "{:<6} {:<9} {:>7} {:>10} {:>8} {:>8}  {:<12} {:<10}",
        "node", "role", "scored", "divergent", "score", "last z", "verdict", "lifecycle"
    );
    for node in &report.nodes {
        let trust = &node.trust;
        println!(
            "{:<6} {:<9} {:>7} {:>10} {:>8.3} {:>8.2}  {:<12} {:<10?}",
            node.node,
            if plan.is_poisoned(node.node) { "poisoner" } else { "honest" },
            trust.rounds_scored,
            trust.divergent_rounds,
            trust.score,
            trust.last_divergence,
            verdict_label(trust.verdict),
            node.lifecycle.state,
        );
    }
    let stats = report.trust;
    println!(
        "\ntrust plane: {} rounds scored, {} node-rounds, {} divergent, {} suspects, \
         {} quarantines, {} exports withheld",
        stats.rounds_scored,
        stats.nodes_scored,
        stats.divergent,
        stats.suspects,
        stats.quarantines,
        stats.excluded,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== poisoned fleet under the trust plane ==");
    println!(
        "{NODES} smart-overclock nodes, {VICTIMS} Byzantine (sign-flip x4 exports), median \
         aggregation, exchange every 5 epochs, default trust policy\n"
    );
    let (poisoned, plan) = run(VICTIMS)?;
    print_table(&poisoned, &plan);

    println!("\n== clean fleet, same shape and policy ==\n");
    let (clean, clean_plan) = run(0)?;
    print_table(&clean, &clean_plan);

    // The acceptance bar.
    assert_eq!(
        poisoned.trust.quarantines, VICTIMS as u64,
        "every persistent poisoner must be quarantined"
    );
    for node in &poisoned.nodes {
        if plan.is_poisoned(node.node) {
            assert_eq!(node.trust.verdict, TrustVerdict::Quarantined);
            assert_eq!(node.lifecycle.state, NodeState::Drained, "quarantine must drain");
        } else {
            assert_eq!(node.trust.verdict, TrustVerdict::Trusted);
        }
    }
    assert_eq!(clean.trust.suspects, 0, "a clean fleet must record zero suspects");
    assert_eq!(clean.trust.quarantines, 0, "a clean fleet must record zero quarantines");

    println!("\nall poisoners quarantined and drained; clean fleet untouched");
    Ok(())
}
