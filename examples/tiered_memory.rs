//! SmartMemory end to end: learn per-region scan frequencies for a two-tier
//! memory system and offload warm memory while meeting an 80% local-access
//! SLO.
//!
//! Run with: `cargo run --release --example tiered_memory`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(300);
    for kind in MemoryWorkloadKind::FIG7 {
        let node = Shared::new(MemoryNode::new(
            kind,
            MemoryNodeConfig { batches: 256, accesses_per_sec: 40_000.0, ..Default::default() },
        ));
        let (model, actuator) = smart_memory(&node, MemoryConfig::default());
        let runtime = SimRuntime::new(model, actuator, memory_schedule(), node.clone());
        let report = runtime.run_for(horizon)?;

        let (remote, total, resets, slo, recent_remote) = node.with(|n| {
            (
                n.remote_batch_count(),
                n.batch_count(),
                n.access_bit_resets(),
                n.slo_attainment(0.8),
                n.recent_remote_fraction(),
            )
        });
        println!("workload: {}", kind.name());
        println!(
            "  memory offloaded to second tier: {remote}/{total} batches ({:.0} MB of {:.0} MB)",
            remote as f64 * 2.0,
            total as f64 * 2.0
        );
        println!("  access-bit resets (TLB flushes): {resets}");
        println!("  80% local-access SLO attainment: {:.1}%", slo * 100.0);
        println!("  recent remote-access fraction  : {:.1}%", recent_remote * 100.0);
        println!(
            "  agent: {} epochs, {} intercepted predictions, {} mitigations",
            report.stats.model.epochs_completed,
            report.stats.model.intercepted_predictions,
            report.stats.actuator.mitigations
        );
        println!();
    }
    Ok(())
}
