//! The paper's full deployment story: all three SOL agents — SmartOverclock,
//! SmartHarvest, SmartMemory — co-located on one node, assembled with the
//! typed `ScenarioBuilder` API and the composable `MultiNode` environment.
//!
//! The substrates are physically coupled: overclocking speeds up the
//! harvest-side primary VM (frequency→demand) and raises the memory
//! workload's access rate (frequency→memory-bandwidth). Each agent's report
//! is read back through its typed handle — no downcasts.
//!
//! Run with: `cargo run --release --example three_agents`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(120);

    let agents = three_agents(ThreeAgentConfig::default());
    let (overclock, harvest, memory) = (agents.overclock, agents.harvest, agents.memory);
    let (cpu, harvest_node, memory_node) =
        (agents.cpu.clone(), agents.harvest_node.clone(), agents.memory_node.clone());

    let report = agents.runtime.run_for(horizon)?;

    println!("three-agent node: {} agents, horizon {}", report.agents.len(), horizon);
    for agent in &report.agents {
        let s = &agent.stats;
        println!(
            "  {:<16} epochs={:<4} model-preds={:<4} defaults={:<4} safeguard-trips={}",
            agent.name,
            s.model.epochs_completed,
            s.model.model_predictions,
            s.model.default_predictions,
            s.actuator.safeguard_triggers,
        );
    }

    let (perf, power) = cpu.with(|n| (n.performance().score, n.average_power_watts()));
    let (p99, harvested) = harvest_node.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
    let (remote, total, slo) =
        memory_node.with(|n| (n.remote_batch_count(), n.batch_count(), n.slo_attainment(0.8)));
    println!("node outcome:");
    println!("  overclocked VM: perf score {perf:.3}, avg power {power:.1} W");
    println!("  primary VM:     p99 latency {p99:.2} ms, harvested {harvested:.1} core-s");
    println!(
        "  memory:         {remote}/{total} batches offloaded, {:.1}% SLO attainment",
        slo * 100.0
    );

    // Typed access through the handles: each learner made progress.
    assert!(report.agent(overclock).stats().model.epochs_completed > 80);
    assert!(report.agent(harvest).stats().model.epochs_completed > 2_000);
    assert!(report.agent(memory).stats().model.epochs_completed >= 2);
    assert!(slo > 0.5, "memory SLO attainment collapsed: {slo}");
    println!("all three agents learned on one shared node");
    Ok(())
}
