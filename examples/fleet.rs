//! SOL at fleet scale: eight simulated servers, each hosting all three paper
//! agents, stamped out from one `ScenarioRecipe` and driven by the
//! `FleetRuntime` under a single virtual clock.
//!
//! Every node gets its own derived seed (heterogeneous but deterministic),
//! the nodes are sharded across worker threads and synchronized on epoch
//! boundaries, and the per-node results are folded into fleet-level safety
//! dashboards: per-role totals and percentiles, safeguard-activation rates,
//! and SLO-violation counts. The dashboard is byte-identical regardless of
//! the worker-thread count — verified at the end of this example.
//!
//! Run with: `cargo run --release --example fleet`

use sol::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(60);
    let preset = three_agents_recipe(ThreeAgentConfig::default());
    let handles = [
        ("smart-overclock", AgentId::from(preset.overclock)),
        ("smart-harvest", AgentId::from(preset.harvest)),
        ("smart-memory", AgentId::from(preset.memory)),
    ];

    let config = FleetConfig { nodes: 8, threads: 4, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe.clone(), config.clone())?;
    let report = fleet.run(horizon)?;

    println!(
        "fleet: {} nodes x 3 agents, horizon {horizon}, {} sync epochs",
        report.nodes.len(),
        report.epochs
    );
    println!("\nper-role dashboard (aggregated over {} nodes):", report.nodes.len());
    for (label, id) in handles {
        let role = report.role(id);
        println!(
            "  {label:<16} epochs p50/p90/max={:.0}/{:.0}/{:.0}  actions={:<6} \
             safeguard-rate={:.2}  trips(total)={}",
            role.epochs_completed.p50,
            role.epochs_completed.p90,
            role.epochs_completed.max,
            role.totals.actions_taken(),
            role.safeguard_activation_rate,
            role.totals.actuator.safeguard_triggers,
        );
    }

    println!("\nfleet environment metrics:");
    for metric in &report.metrics {
        println!(
            "  {:<24} total={:<10.3} mean={:<8.3} min={:<8.3} max={:.3}",
            metric.name, metric.total, metric.mean, metric.min, metric.max
        );
    }

    let violations = report.metric("memory_slo_violations").expect("recipe reports violations");
    println!(
        "\n{} of {} nodes violated the memory SLO attainment floor",
        violations.total as u64,
        report.nodes.len()
    );

    // Seeded heterogeneity: the overclock learners explored differently, so
    // the fleet shows a spread of per-node outcomes.
    let oc = report.role(preset.overclock);
    assert!(report.nodes.len() == 8);
    assert!(oc.totals.model.epochs_completed > 0);
    assert!(
        report.nodes.iter().map(|n| n.seed).collect::<std::collections::HashSet<_>>().len() == 8,
        "every node must have a distinct derived seed"
    );

    // The dashboard must not depend on how the fleet was sharded: re-run the
    // same recipe single-threaded and compare byte for byte.
    let single = FleetRuntime::new(preset.recipe.clone(), FleetConfig { threads: 1, ..config })?
        .run(horizon)?;
    assert_eq!(
        format!("{report:#?}"),
        format!("{single:#?}"),
        "FleetReport must be byte-identical across worker-thread counts"
    );
    println!("4-thread and 1-thread fleet runs produced byte-identical reports");
    Ok(())
}
