//! Failure injection: show how SOL's safeguards contain the damage when
//! everything goes wrong at once — corrupted counters, a broken model, and a
//! 30-second scheduling delay — compared with the same agent run unchecked.
//!
//! Run with: `cargo run --release --example failure_injection`

use sol::prelude::*;

fn run(config: OverclockConfig, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(200);
    let node = Shared::new(CpuNode::new(
        OverclockWorkloadKind::DiskSpeed.build(8),
        CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
    ));
    // Corrupted IPS counter 10% of the time.
    node.with(|n| n.set_bad_ips_probability(0.10));
    let (model, actuator) = smart_overclock(&node, config);
    let mut runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
    // The model thread is starved for 30 seconds in the middle of the run.
    runtime.delay_model_at(Timestamp::from_secs(60), SimDuration::from_secs(30));
    let report = runtime.run_for(horizon)?;

    let power = node.with(|n| n.average_power_watts());
    println!("{label}");
    println!("  average power                  : {power:.1} W");
    println!("  samples discarded by validation: {}", report.stats.model.samples_discarded);
    println!("  predictions intercepted        : {}", report.stats.model.intercepted_predictions);
    println!(
        "  actions without a fresh prediction: {}",
        report.stats.actuator.actions_without_prediction
    );
    println!("  actuator safeguard triggers    : {}", report.stats.actuator.safeguard_triggers);
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DiskSpeed workload (never benefits from overclocking), broken model that always");
    println!("overclocks, 10% corrupted IPS readings, 30 s model scheduling delay:\n");
    run(
        OverclockConfig { broken_model: true, ..OverclockConfig::without_safeguards() },
        "without SOL safeguards",
    )?;
    run(
        OverclockConfig { broken_model: true, ..OverclockConfig::default() },
        "with SOL safeguards",
    )?;
    println!("The nominal-frequency power for this workload is roughly what the safeguarded");
    println!("agent draws; the unchecked agent pins the cores at 2.3 GHz and wastes power.");
    Ok(())
}
